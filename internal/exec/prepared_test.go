package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/audit/gen"
)

// TestPreparedMatchesTextCompile is the equivalence property test for
// the prepared-plan pipeline: every randomly composed query — host
// filters, disjunctions, contradictions, path patterns, temporal and
// attribute relations, distinct and plain projections — must yield the
// identical match set and projected row set under prepared-plan
// execution (bound set parameters, cached templates) and under the
// legacy text pipeline (rendered IN-lists re-parsed per shard), on both
// a 1-shard and a 4-shard store. Each query runs twice on the prepared
// engine, so the second execution exercises the warm plan-cache path
// and must agree with the cold one.
func TestPreparedMatchesTextCompile(t *testing.T) {
	hosts := []string{"host1", "host2", "host3"}
	cfgs := []gen.Config{
		{Seed: 42, Host: hosts[0], BenignEvents: 400,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}},
		{Seed: 43, Host: hosts[1], BenignEvents: 400},
		{Seed: 44, Host: hosts[2], BenignEvents: 400,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 20 * time.Minute}}},
	}
	one, _ := newShardedEngine(t, 1, cfgs...)
	many, _ := newShardedEngine(t, 4, cfgs...)

	type pair struct {
		name           string
		prepared, text *Engine
	}
	pairs := []pair{
		{
			"1-shard",
			&Engine{Rel: one.Rel, Graph: one.Graph, Plans: NewPlanCache(64)},
			&Engine{Rel: one.Rel, Graph: one.Graph, UseTextCompile: true},
		},
		{
			"4-shard",
			&Engine{Rel: many.Rel, Graph: many.Graph, Plans: NewPlanCache(64)},
			&Engine{Rel: many.Rel, Graph: many.Graph, UseTextCompile: true},
		},
		// The same cross-check with the cost optimizer off: the prepared
		// pipeline must match text compilation in static order too.
		{
			"4-shard-static",
			&Engine{Rel: many.Rel, Graph: many.Graph, Plans: NewPlanCache(64), DisableCostOptimizer: true},
			&Engine{Rel: many.Rel, Graph: many.Graph, UseTextCompile: true, DisableCostOptimizer: true},
		},
	}

	rng := rand.New(rand.NewSource(5150))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab"}
	fileOps := []string{"read", "write", "read || write", "!read"}
	attrOps := []string{"=", "!=", "<", "<=", ">", ">="}
	evtAttrs := []string{"srcid", "dstid", "starttime", "amount", "id"}

	const cases = 120
	for i := 0; i < cases; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			switch rng.Intn(6) {
			case 0:
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			case 1:
				subjF = fmt.Sprintf(`[host = "%s"]`, hosts[rng.Intn(len(hosts))])
			case 2:
				subjF = fmt.Sprintf(`[host = "%s" && "%%%s%%"]`,
					hosts[rng.Intn(len(hosts))], exes[rng.Intn(len(exes))])
			case 3:
				subjF = fmt.Sprintf(`[host = "%s" || host = "%s"]`,
					hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))])
			}
			if rng.Intn(3) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			} else if rng.Intn(6) == 0 {
				objF = fmt.Sprintf(`[host = "%s"]`, hosts[rng.Intn(len(hosts))])
			}
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~%d)[read] file %s%s as %s\n",
					subjID, subjF, 2+rng.Intn(2), objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n",
					subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		var rels []string
		if nPat > 1 && rng.Intn(2) == 0 {
			a, c := rng.Intn(nPat), rng.Intn(nPat)
			if a != c {
				op := "before"
				if rng.Intn(2) == 0 {
					op = "after"
				}
				rels = append(rels, fmt.Sprintf("%s %s %s", names[a], op, names[c]))
			}
		}
		if rng.Intn(2) == 0 {
			rels = append(rels, fmt.Sprintf("%s.%s %s %d",
				names[rng.Intn(nPat)], evtAttrs[rng.Intn(len(evtAttrs))],
				attrOps[rng.Intn(len(attrOps))], rng.Intn(5000)))
		}
		if len(rels) > 0 {
			b.WriteString("with " + strings.Join(rels, ", ") + "\n")
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		distinct := ""
		if rng.Intn(2) == 0 {
			distinct = "distinct "
		}
		b.WriteString("return " + distinct + strings.Join(ret, ", "))
		src := b.String()

		for _, pr := range pairs {
			tres, err := pr.text.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s text: %v\n%s", i, pr.name, err, src)
			}
			// Cold, then warm: the second run resolves every pattern from
			// the plan cache and must not drift.
			for run, label := range []string{"cold", "warm"} {
				pres, err := pr.prepared.ExecuteTBQL(src)
				if err != nil {
					t.Fatalf("case %d %s prepared(%s): %v\n%s", i, pr.name, label, err, src)
				}
				pm, tm := canonicalMatches(pres.Matches), canonicalMatches(tres.Matches)
				if len(pm) != len(tm) {
					t.Fatalf("case %d %s %s: %d prepared matches, %d text\n%s",
						i, pr.name, label, len(pm), len(tm), src)
				}
				for k := range pm {
					if pm[k] != tm[k] {
						t.Fatalf("case %d %s %s match %d: prepared %q, text %q\n%s",
							i, pr.name, label, k, pm[k], tm[k], src)
					}
				}
				got, want := sortedRows(pres.Rows), sortedRows(tres.Rows)
				if len(got) != len(want) {
					t.Fatalf("case %d %s %s: %d prepared rows, %d text\n%s",
						i, pr.name, label, len(got), len(want), src)
				}
				for r := range got {
					if got[r] != want[r] {
						t.Fatalf("case %d %s %s row %d: prepared %q, text %q\n%s",
							i, pr.name, label, r, got[r], want[r], src)
					}
				}
				// Propagation accounting must agree between pipelines.
				if pres.Stats.Propagations != tres.Stats.Propagations ||
					pres.Stats.PropagationsSkipped != tres.Stats.PropagationsSkipped {
					t.Fatalf("case %d %s %s: propagation stats drifted (prepared %d/%d, text %d/%d)\n%s",
						i, pr.name, label, pres.Stats.Propagations, pres.Stats.PropagationsSkipped,
						tres.Stats.Propagations, tres.Stats.PropagationsSkipped, src)
				}
				if run == 1 && !pres.Stats.ShortCircuit && len(pres.Stats.DataQueries) > 0 &&
					pres.Stats.PlanCacheHits == 0 {
					t.Fatalf("case %d %s warm run resolved no plans from the cache\n%s", i, pr.name, src)
				}
			}
		}
	}
}

// TestPreparedLargePropagationSet: a propagation set far above the old
// 512-ID text-pipeline cap must be propagated (PropagationsSkipped ==
// 0) under the raised default, and prepared execution must match the
// text pipeline run at the same cap — under both 1 and 4 shards.
func TestPreparedLargePropagationSet(t *testing.T) {
	// 20 workers × 40 files: the f1 variable accumulates 800 distinct
	// file IDs, which the third pattern receives as a propagated set —
	// beyond the old 512 default, well under the raised one.
	query := `proc p["%worker%"] read file f1 as e1
proc p write file f2 as e2
proc p2 write file f1 as e3
return p, f1, f2`
	for _, shards := range []int{1, 4} {
		en := fanoutShardedEngine(t, shards, 3, 20, 40, 1)
		prepared := &Engine{Rel: en.Rel, Plans: NewPlanCache(16)}
		text := &Engine{Rel: en.Rel, UseTextCompile: true}

		pres, err := prepared.ExecuteTBQL(query)
		if err != nil {
			t.Fatalf("%d shards prepared: %v", shards, err)
		}
		if pres.Stats.PropagationsSkipped != 0 {
			t.Errorf("%d shards: PropagationsSkipped = %d, want 0 (default cap %d)",
				shards, pres.Stats.PropagationsSkipped, DefaultMaxPropagatedIDs)
		}
		if pres.Stats.Propagations == 0 {
			t.Fatalf("%d shards: fixture propagated nothing", shards)
		}
		// The old default would have dropped the 800-ID f1 set.
		if old := 512; pres.Stats.PropagationsSkipped == 0 {
			capped := &Engine{Rel: en.Rel, MaxPropagatedIDs: old}
			cres, err := capped.ExecuteTBQL(query)
			if err != nil {
				t.Fatal(err)
			}
			if cres.Stats.PropagationsSkipped == 0 {
				t.Errorf("%d shards: fixture's sets fit the old %d cap; raise the fixture size", shards, old)
			}
		}

		tres, err := text.ExecuteTBQL(query)
		if err != nil {
			t.Fatalf("%d shards text: %v", shards, err)
		}
		got, want := sortedRows(pres.Rows), sortedRows(tres.Rows)
		if len(got) != len(want) {
			t.Fatalf("%d shards: %d prepared rows, %d text", shards, len(got), len(want))
		}
		for r := range got {
			if got[r] != want[r] {
				t.Fatalf("%d shards row %d: prepared %q, text %q", shards, r, got[r], want[r])
			}
		}
	}
}

// TestPlanCacheLRUAndStats: repeated hunts hit the cache, distinct
// patterns miss and fill it, and the LRU cap evicts cold templates.
func TestPlanCacheLRUAndStats(t *testing.T) {
	en := leakageEngine(t, 500)
	en.Plans = NewPlanCache(2)

	run := func(src string) Stats {
		res, err := en.ExecuteTBQL(src)
		if err != nil {
			t.Fatalf("%v\n%s", err, src)
		}
		return res.Stats
	}

	q1 := `proc p["%/bin/tar%"] read file f as e1` + "\nreturn p, f"
	st := run(q1)
	if st.PlanCacheMisses == 0 || st.PlanCacheHits != 0 {
		t.Fatalf("cold hunt stats = %+v", st)
	}
	st = run(q1)
	if st.PlanCacheHits == 0 || st.PlanCacheMisses != 0 {
		t.Fatalf("warm hunt stats = %+v", st)
	}

	// The plan key clears the binding name: the same pattern under a
	// different name must hit.
	st = run(`proc p["%/bin/tar%"] read file f as other` + "\nreturn p, f")
	if st.PlanCacheHits == 0 || st.PlanCacheMisses != 0 {
		t.Fatalf("renamed pattern stats = %+v", st)
	}

	// Two more distinct patterns overflow the 2-entry cap...
	run(`proc p["%/bin/bash%"] read file f as e1` + "\nreturn p, f")
	run(`proc p["%/usr/bin/curl%"] read file f as e1` + "\nreturn p, f")
	if n := en.Plans.Len(); n != 2 {
		t.Fatalf("cache len = %d, want 2", n)
	}
	// ...evicting q1's template, so it misses again.
	st = run(q1)
	if st.PlanCacheMisses == 0 {
		t.Fatalf("evicted pattern should miss, stats = %+v", st)
	}

	hits, misses := en.Plans.Counters()
	if hits < 2 || misses < 3 {
		t.Fatalf("cumulative counters = %d hits / %d misses", hits, misses)
	}
}

// TestLazyDataQueries: the hot cursor path must not render data-query
// text; DataQueries renders on demand and matches the text pipeline's
// output exactly, propagated IN-lists included.
func TestLazyDataQueries(t *testing.T) {
	en := leakageEngine(t, 500)
	src := `proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1
proc p write file f2 as e2
return p, f, f2`

	cur, err := en.ExecuteTBQLCursor(src)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if got := cur.Stats().DataQueries; got != nil {
		t.Fatalf("Stats rendered DataQueries on the hot path: %v", got)
	}

	rendered := cur.DataQueries()
	if len(rendered) != 2 {
		t.Fatalf("DataQueries = %v", rendered)
	}
	if cur.Stats().DataQueries == nil {
		t.Fatal("DataQueries not memoized into stats")
	}

	text := &Engine{Rel: en.Rel, Graph: en.Graph, UseTextCompile: true}
	tres, err := text.ExecuteTBQL(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tres.Stats.DataQueries) != len(rendered) {
		t.Fatalf("text pipeline ran %d queries, rendered %d", len(tres.Stats.DataQueries), len(rendered))
	}
	for i := range rendered {
		if rendered[i] != tres.Stats.DataQueries[i] {
			t.Errorf("query %d:\nprepared render: %s\ntext pipeline:   %s", i, rendered[i], tres.Stats.DataQueries[i])
		}
	}
	if !strings.Contains(rendered[1], "IN (") {
		t.Errorf("propagated constraint missing from rendered query: %s", rendered[1])
	}
}
