package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// repeatedTBQL is the repeat-hunt workload shape: the paper's Fig. 2
// data-leakage hunt (eight chained, selective patterns) plus a path
// pattern, so a cold execution pays eight SQL parses, one Cypher
// parse, and plan derivation for every pattern — exactly what a warm
// plan cache removes.
const repeatedTBQL = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
proc px[exename = "/usr/sbin/apache2"] ~>(1~3)[read] file f2 as evt9
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

// repeatedEngine is a small store: the fetch and join work of one hunt
// is deliberately modest, so the benchmark contrasts what the plan
// cache removes (compile + parse per hunt) against what every hunt
// must do anyway.
func repeatedEngine(b *testing.B) (*Engine, *tbql.Query) {
	en := leakageEngine(b, 100)
	q, err := tbql.Parse(repeatedTBQL)
	if err != nil {
		b.Fatal(err)
	}
	return en, q
}

// BenchmarkHuntRepeated measures the dominant service workload: the
// same hunt re-executed against a warm cross-hunt plan cache. Every
// pattern resolves from the cache, so the fetch phase binds parameters
// and executes — zero lexing, parsing, or plan derivation. The
// acceptance bar is ≥ 2× faster first page than BenchmarkHuntColdPlan.
func BenchmarkHuntRepeated(b *testing.B) {
	en, q := repeatedEngine(b)
	en.Plans = NewPlanCache(DefaultPlanCacheSize)
	if err := warmFirstPage(en, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := warmFirstPage(en, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuntRepeatedCtx is BenchmarkHuntRepeated under a live
// cancellable context — the production /hunt shape since lifecycle
// governance landed. The A/B pair against BenchmarkHuntRepeated bounds
// what the context checks (wave boundaries, every joinCheckEvery join
// candidates) cost on the hot path; the budget is 3%.
func BenchmarkHuntRepeatedCtx(b *testing.B) {
	en, q := repeatedEngine(b)
	en.Plans = NewPlanCache(DefaultPlanCacheSize)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	warm := func() error {
		cur, err := en.ExecuteCursorCtx(ctx, q, 0, nil)
		if err != nil {
			return err
		}
		defer cur.Close()
		rows := 0
		for rows < 100 && cur.Next() {
			rows++
		}
		if rows == 0 {
			return fmt.Errorf("hunt found nothing")
		}
		return cur.Err()
	}
	if err := warm(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := warm(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuntRepeatedNoTrace is BenchmarkHuntRepeated with pipeline
// tracing disabled — the A/B pair bounding the tracing overhead on the
// hot repeat-hunt path (the budget is 5%).
func BenchmarkHuntRepeatedNoTrace(b *testing.B) {
	en, q := repeatedEngine(b)
	en.Plans = NewPlanCache(DefaultPlanCacheSize)
	en.DisableTracing = true
	if err := warmFirstPage(en, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := warmFirstPage(en, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuntColdPlan is the same hunt with plan caching disabled:
// every execution re-compiles each pattern's data query (one SQL or
// Cypher parse + plan derivation per pattern — the cost the text
// pipeline paid per shard and the plan cache removes entirely).
func BenchmarkHuntColdPlan(b *testing.B) {
	en, q := repeatedEngine(b)
	en.Plans = nil
	if err := warmFirstPage(en, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := warmFirstPage(en, q); err != nil {
			b.Fatal(err)
		}
	}
}

// warmFirstPage reads the first page of the hunt through the cursor,
// the production /hunt shape.
func warmFirstPage(en *Engine, q *tbql.Query) error {
	cur, err := en.ExecuteCursor(q)
	if err != nil {
		return err
	}
	defer cur.Close()
	rows := 0
	for rows < 100 && cur.Next() {
		rows++
	}
	if rows == 0 {
		return fmt.Errorf("hunt found nothing")
	}
	return cur.Err()
}

// largeSetFixture is the 50k-ID propagation workload, built once and
// shared by BenchmarkPropagationLargeSet's sub-benchmarks: a reader
// process reads largeSetFiles distinct files (the hunt's first pattern,
// whose observed file IDs become the propagated set), a writer process
// writes the first 1000 of them (the rows the propagated fetch must
// find), and 100 noise processes contribute 200k write events to other
// files — the haystack the constraint has to cut through.
type largeSetFix struct {
	en    *Engine
	ids   []int64 // the 50k propagated file IDs, ascending
	wrote int     // rows the propagated fetch must return
}

const largeSetFiles = 50_000

var (
	largeSetOnce sync.Once
	largeSet     largeSetFix
)

// largeSetTBQL chains the writer pattern behind the reader pattern on
// the shared file variable: the second fetch receives every file ID the
// first fetch observed as one propagated constraint set.
const largeSetTBQL = `proc p["%reader%"] read file f1 as e1
proc p2["%writer%"] write file f1 as e2
return distinct p2`

func largeSetFixture(b *testing.B) largeSetFix {
	b.Helper()
	largeSetOnce.Do(func() {
		var entities []*audit.Entity
		var events []*audit.Event
		nextID := int64(1)
		newEntity := func(e audit.Entity) int64 {
			e.ID = nextID
			e.Host = "h0"
			nextID++
			entities = append(entities, &e)
			return e.ID
		}
		reader := newEntity(audit.Entity{Type: audit.EntityProcess, ExeName: "/bin/reader", PID: 100})
		writer := newEntity(audit.Entity{Type: audit.EntityProcess, ExeName: "/bin/writer", PID: 101})
		var ts int64
		addEvent := func(pid, fid int64, op audit.OpType) {
			ts += 10
			events = append(events, &audit.Event{ID: nextID, SrcID: pid, DstID: fid,
				Op: op, StartTime: ts, EndTime: ts + 1, Amount: 64, Host: "h0"})
			nextID++
		}
		var ids []int64
		for f := 0; f < largeSetFiles; f++ {
			fid := newEntity(audit.Entity{Type: audit.EntityFile, Path: fmt.Sprintf("/data/%d", f)})
			ids = append(ids, fid)
			addEvent(reader, fid, audit.OpRead)
			if f < 1000 {
				addEvent(writer, fid, audit.OpWrite)
			}
		}
		for p := 0; p < 100; p++ {
			pid := newEntity(audit.Entity{Type: audit.EntityProcess,
				ExeName: fmt.Sprintf("/bin/noise%d", p), PID: 200 + p})
			fid := newEntity(audit.Entity{Type: audit.EntityFile, Path: fmt.Sprintf("/noise/%d", p)})
			for i := 0; i < 2000; i++ {
				addEvent(pid, fid, audit.OpWrite)
			}
		}
		sh, err := relstore.NewSharded(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := sh.Load(entities, events); err != nil {
			b.Fatal(err)
		}
		largeSet = largeSetFix{en: &Engine{Rel: sh}, ids: ids, wrote: 1000}
	})
	return largeSet
}

// BenchmarkPropagationLargeSet measures executing a 50k-ID propagated
// constraint — the per-wave data query a fan-out hunt issues once the
// first pattern has observed 50k candidate files — as a bound set
// parameter versus the rendered-IN-list text baseline. The bound set
// binds a []int64 once and drives the column's hash index (50k probes
// under one lock); the baseline renders a ~400 KB SQL string, re-lexes
// and re-parses it, rebuilds a 50k-entry string-keyed membership map,
// and scans every optype='write' row against it. The acceptance bar is
// ≥ 5× the baseline's throughput; the hunt-level subtest proves the
// same set flows with PropagationsSkipped == 0.
func BenchmarkPropagationLargeSet(b *testing.B) {
	fix := largeSetFixture(b)
	q, err := tbql.Parse(largeSetTBQL)
	if err != nil {
		b.Fatal(err)
	}
	writerPat := &q.Patterns[1]
	view := fix.en.Rel.Shard(0).View()

	b.Run("bound-set", func(b *testing.B) {
		// Compile once (the warm plan-cache state a repeat hunt sees);
		// each iteration binds the 50k-ID set and executes.
		plan, err := fix.en.compilePlan(writerPat, propObj, DefaultMaxHops)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rr, err := plan.sql.QueryView(view, plan.bindSQL(nil, fix.ids))
			if err != nil {
				b.Fatal(err)
			}
			if len(rr.Data) != fix.wrote {
				b.Fatalf("rows = %d, want %d", len(rr.Data), fix.wrote)
			}
		}
	})
	b.Run("rendered-in-list", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := compileSQL(writerPat, []string{"e.dstid IN (" + inListSQL(fix.ids) + ")"})
			rr, err := view.Query(src)
			if err != nil {
				b.Fatal(err)
			}
			if len(rr.Data) != fix.wrote {
				b.Fatalf("rows = %d, want %d", len(rr.Data), fix.wrote)
			}
		}
	})
	b.Run("hunt-skips-nothing", func(b *testing.B) {
		// The end-to-end property behind the numbers: the whole hunt
		// propagates the 50k-ID set (PropagationsSkipped == 0) under a
		// cap that admits it, on the prepared pipeline.
		en := &Engine{Rel: fix.en.Rel, MaxPropagatedIDs: 100_000, Plans: NewPlanCache(16)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur, err := en.ExecuteCursor(q)
			if err != nil {
				b.Fatal(err)
			}
			if !cur.Next() {
				b.Fatal("hunt found nothing")
			}
			st := cur.Stats()
			cur.Close()
			if st.PropagationsSkipped != 0 {
				b.Fatalf("PropagationsSkipped = %d, want 0", st.PropagationsSkipped)
			}
			if st.Propagations == 0 {
				b.Fatal("nothing propagated; fixture broken")
			}
		}
	})
}
