package exec

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// wideTBQL matches many rows, so a cursor over it can be abandoned
// mid-stream with matches still pending.
const wideTBQL = `proc p read || write file f as e1
return p, f`

// tryIngest attempts a write against both stores' shard 0 and reports
// on done. While a cursor holds the hunt snapshot, the relational
// insert blocks on that shard's events-table write lock.
func tryIngest(en *Engine, done chan<- error) {
	tryIngestShard(en, 0, done)
}

// tryIngestShard attempts a write against one shard of both stores.
func tryIngestShard(en *Engine, shard int, done chan<- error) {
	ev := &audit.Event{ID: 1<<40 + int64(shard), SrcID: 1, DstID: 2, Op: audit.OpRead,
		StartTime: 1, EndTime: 2, Amount: 1, Host: "h"}
	if err := en.Rel.Shard(shard).Table(relstore.EventTable).Insert(relstore.EventRow(ev)); err != nil {
		done <- err
		return
	}
	if en.Graph != nil {
		_, err := en.Graph.Shard(shard).AddNode(graphstore.Node{Label: "probe"})
		done <- err
		return
	}
	done <- nil
}

// expectBlocked asserts the writer has not completed yet (the cursor's
// snapshot is pinning the read locks).
func expectBlocked(t *testing.T, done <-chan error) {
	t.Helper()
	select {
	case err := <-done:
		t.Fatalf("writer completed while the cursor held the snapshot (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
}

// expectReleased asserts the writer completes promptly: the cursor's
// read locks were released and did not leak.
func expectReleased(t *testing.T, done <-chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer failed after lock release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer still blocked: the cursor leaked its per-store read locks")
	}
}

// TestCursorCloseReleasesLocks is the lock-leak regression test for the
// lazy join path: a cursor abandoned mid-stream pins the store snapshot
// until Close, and Close — even repeated — must release it.
func TestCursorCloseReleasesLocks(t *testing.T) {
	en := leakageEngine(t, 300)
	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}

	done := make(chan error, 1)
	go tryIngest(en, done)
	expectBlocked(t, done)

	// Abandon the cursor mid-stream; rows remain unread.
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	expectReleased(t, done)
}

// TestCursorPinsGraphOnlyForPathPatterns: a pure-SQL hunt must not pin
// the graph's read lock (graph ingest proceeds while its cursor is
// open), while a path-pattern hunt must pin it until Close.
func TestCursorPinsGraphOnlyForPathPatterns(t *testing.T) {
	en := leakageEngine(t, 300)

	// Pure-SQL cursor: graph writers stay unblocked.
	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows")
	}
	graphDone := make(chan error, 1)
	go func() {
		_, err := en.Graph.Shard(0).AddNode(graphstore.Node{Label: "probe"})
		graphDone <- err
	}()
	expectReleased(t, graphDone)
	cur.Close()

	// Path-pattern cursor: graph writers queue until Close.
	cur, err = en.ExecuteTBQLCursor(`proc p ~>(1~3)[read] file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no path rows; fixture broken")
	}
	graphDone = make(chan error, 1)
	go func() {
		_, err := en.Graph.Shard(0).AddNode(graphstore.Node{Label: "probe2"})
		graphDone <- err
	}()
	expectBlocked(t, graphDone)
	cur.Close()
	expectReleased(t, graphDone)
}

// TestCursorExhaustionReleasesLocks: fully draining a cursor without
// calling Close must also release the snapshot.
func TestCursorExhaustionReleasesLocks(t *testing.T) {
	en := leakageEngine(t, 300)
	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go tryIngest(en, done)
	expectReleased(t, done)
}

// TestCursorShortCircuitReleasesLocks: a hunt whose fetch phase
// short-circuits returns an empty cursor that needs no snapshot; the
// locks must already be free before the caller touches the cursor.
func TestCursorShortCircuitReleasesLocks(t *testing.T) {
	en := leakageEngine(t, 300)
	cur, err := en.ExecuteTBQLCursor(`proc p["%no-such-binary%"] read file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Stats().ShortCircuit {
		t.Fatal("expected a short-circuit hunt")
	}

	done := make(chan error, 1)
	go tryIngest(en, done)
	expectReleased(t, done)
}

// TestExecuteReleasesLocks: Execute drains and closes internally, so a
// materializing hunt must leave no locks behind.
func TestExecuteReleasesLocks(t *testing.T) {
	en := leakageEngine(t, 300)
	if _, err := en.ExecuteTBQL(wideTBQL); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go tryIngest(en, done)
	expectReleased(t, done)
}

// shardedStreamEngine loads two hosts that land on distinct shards of a
// 4-shard store (and reports which shards those are).
func shardedStreamEngine(t *testing.T) (en *Engine, shardA, shardB int) {
	t.Helper()
	en, _ = newShardedEngine(t, 4,
		gen.Config{Seed: 42, Host: "host1", BenignEvents: 200,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}},
		gen.Config{Seed: 43, Host: "host2", BenignEvents: 200},
	)
	shardA = en.Rel.ShardFor("host1")
	shardB = en.Rel.ShardFor("host2")
	if shardA == shardB {
		t.Fatalf("host1 and host2 share shard %d; pick different hosts", shardA)
	}
	return en, shardA, shardB
}

// TestShardedCursorCloseReleasesEveryShard: a cursor over an unpruned
// hunt pins every shard's read locks; writers to each shard must block
// while it is open and complete once it closes — Close must release
// every shard, not just the first.
func TestShardedCursorCloseReleasesEveryShard(t *testing.T) {
	en, shardA, shardB := shardedStreamEngine(t)
	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}

	doneA, doneB := make(chan error, 1), make(chan error, 1)
	go tryIngestShard(en, shardA, doneA)
	go tryIngestShard(en, shardB, doneB)
	expectBlocked(t, doneA)
	expectBlocked(t, doneB)

	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	expectReleased(t, doneA)
	expectReleased(t, doneB)
}

// TestShardedCursorPinsOnlyPrunedShards: a host-pinned cursor must pin
// only its host's shard — ingest for other hosts proceeds while it is
// open. (Shard 0's entity table stays pinned for the projection cache,
// so the other-shard probe writes events only.)
func TestShardedCursorPinsOnlyPrunedShards(t *testing.T) {
	en, shardA, shardB := shardedStreamEngine(t)
	cur, err := en.ExecuteTBQLCursor(`proc p[host = "host1"] read || write file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}

	// host2's shard is not part of the snapshot: its event table accepts
	// writes immediately.
	otherDone := make(chan error, 1)
	go func() {
		ev := &audit.Event{ID: 1 << 41, SrcID: 1, DstID: 2, Op: audit.OpRead,
			StartTime: 1, EndTime: 2, Amount: 1, Host: "host2"}
		otherDone <- en.Rel.Shard(shardB).Table(relstore.EventTable).Insert(relstore.EventRow(ev))
	}()
	expectReleased(t, otherDone)

	// host1's shard is pinned.
	pinnedDone := make(chan error, 1)
	go tryIngestShard(en, shardA, pinnedDone)
	expectBlocked(t, pinnedDone)

	cur.Close()
	expectReleased(t, pinnedDone)
}

// TestPropagationsSkippedCounted: capping the IN-list size must surface
// the dropped constraints in Stats.PropagationsSkipped instead of
// silently fetching unconstrained tables.
func TestPropagationsSkippedCounted(t *testing.T) {
	// 8 workers share the p variable, so the propagated candidate set
	// has 8 IDs: under a cap of 4 it must be dropped and counted.
	en := fanoutEngine(t, 8, 4, 4)
	full, err := en.ExecuteTBQL(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.PropagationsSkipped != 0 {
		t.Errorf("uncapped run skipped %d propagations", full.Stats.PropagationsSkipped)
	}
	if full.Stats.Propagations == 0 {
		t.Fatal("uncapped run should propagate the shared variable")
	}

	en.MaxPropagatedIDs = 4
	capped, err := en.ExecuteTBQL(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Rows) != len(full.Rows) {
		t.Fatalf("capped run broke correctness: %d rows, want %d", len(capped.Rows), len(full.Rows))
	}
	if capped.Stats.PropagationsSkipped == 0 {
		t.Error("capped run should count skipped propagations")
	}
	if capped.Stats.Propagations >= full.Stats.Propagations {
		t.Errorf("capped run propagated %d, uncapped %d",
			capped.Stats.Propagations, full.Stats.Propagations)
	}
}

// TestExplainPropagated: Explain must name the entity variables each
// pattern shares with earlier scheduled patterns.
func TestExplainPropagated(t *testing.T) {
	en := leakageEngine(t, 100)
	parsed, err := tbql.Parse(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := en.Explain(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps[0].Propagated) != 0 {
		t.Errorf("first pattern cannot receive propagation: %v", eps[0].Propagated)
	}
	var total int
	for _, ep := range eps[1:] {
		total += len(ep.Propagated)
	}
	// Every later Fig. 2 pattern chains to an earlier one through a
	// shared process or file variable.
	if total < len(eps)-1 {
		t.Errorf("expected a propagated variable per chained pattern, got %d across %v", total, eps)
	}

	en.DisablePropagation = true
	eps, err = en.Explain(parsed)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if len(ep.Propagated) != 0 {
			t.Errorf("propagation disabled but %s lists %v", ep.Name, ep.Propagated)
		}
	}
}

// TestCursorLazyJoinWork: reading one row of a high-fanout hunt must do
// far less join work than draining it — the streaming executor's whole
// point.
func TestCursorLazyJoinWork(t *testing.T) {
	en := fanoutEngine(t, 8, 16, 16) // 8*16*16 = 2048 matches
	cur, err := en.ExecuteTBQLCursor(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows")
	}
	firstPage := cur.Stats().JoinCandidates
	cur.Close()

	res, err := en.ExecuteTBQL(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8*16*16 {
		t.Fatalf("full drain rows = %d", len(res.Rows))
	}
	full := res.Stats.JoinCandidates
	if firstPage*10 > full {
		t.Errorf("first row explored %d candidates, full drain %d: join is not lazy",
			firstPage, full)
	}
}
