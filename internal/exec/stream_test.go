package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// wideTBQL matches many rows, so a cursor over it can be held open
// mid-stream with matches still pending.
const wideTBQL = `proc p read || write file f as e1
return p, f`

// pathTBQL exercises the graph backend.
const pathTBQL = `proc p ~>(1~3)[read] file f as e1
return p, f`

// writeProbe writes an event row and a probe node into one shard of
// both stores and reports on done. Under the epoch design no cursor
// ever blocks it.
func writeProbe(en *Engine, shard int, id int64, done chan<- error) {
	ev := &audit.Event{ID: id, SrcID: 1, DstID: 2, Op: audit.OpRead,
		StartTime: 1, EndTime: 2, Amount: 1, Host: "h"}
	if err := en.Rel.Shard(shard).Table(relstore.EventTable).Insert(relstore.EventRow(ev)); err != nil {
		done <- err
		return
	}
	if en.Graph != nil {
		_, err := en.Graph.Shard(shard).AddNode(graphstore.Node{Label: "probe"})
		done <- err
		return
	}
	done <- nil
}

// expectPrompt asserts the writer completes promptly: open cursors pin
// epochs, not locks, so writers never queue behind them.
func expectPrompt(t *testing.T, done <-chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked: a cursor snapshot is holding store locks")
	}
}

// drain reads every remaining row of a cursor.
func drain(t *testing.T, cur *Cursor) [][]string {
	t.Helper()
	var rows [][]string
	for cur.Next() {
		rows = append(rows, cur.Row())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestCursorDoesNotBlockWriters is the inversion of the old lock-leak
// regression suite: an open cursor — even one abandoned mid-stream —
// pins an epoch, not locks, so writers to every store complete promptly
// while it is open, and Close stays idempotent.
func TestCursorDoesNotBlockWriters(t *testing.T) {
	en := leakageEngine(t, 300)
	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}

	done := make(chan error, 1)
	go writeProbe(en, 0, 1<<40, done)
	expectPrompt(t, done)

	// Same for a path-pattern cursor holding a graph mark.
	pcur, err := en.ExecuteTBQLCursor(pathTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !pcur.Next() {
		t.Fatal("no path rows; fixture broken")
	}
	graphDone := make(chan error, 1)
	go func() {
		_, err := en.Graph.Shard(0).AddNode(graphstore.Node{Label: "probe2"})
		graphDone <- err
	}()
	expectPrompt(t, graphDone)
	pcur.Close()

	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestCursorEpochIsolation: rows committed after a cursor's snapshot
// was captured must be invisible to every page the cursor produces —
// no skips, no repeats, no phantom rows — while a cursor created after
// the commit sees them. This is the paging-under-ingest bug the epoch
// design removes.
func TestCursorEpochIsolation(t *testing.T) {
	en := leakageEngine(t, 300)
	want, err := en.ExecuteTBQL(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}

	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}
	got := [][]string{cur.Row()}

	// Commit events that MATCH the open query: duplicates of an already
	// matching event under fresh IDs, straight into the store the way a
	// post-snapshot ingest batch would land.
	src := en.Rel.Shard(0)
	rr, err := src.Query(`SELECT e.id, e.srcid, e.dstid, e.starttime, e.endtime, e.amount, e.host FROM events e JOIN entities s ON e.srcid = s.id JOIN entities o ON e.dstid = o.id WHERE s.type = 'process' AND o.type = 'file' AND e.optype = 'read'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Data) == 0 {
		t.Fatal("no matching event to duplicate")
	}
	tmpl := rr.Data[0]
	for i := int64(0); i < 10; i++ {
		ev := &audit.Event{ID: 1<<40 + i, SrcID: tmpl[1].Int, DstID: tmpl[2].Int,
			Op: audit.OpRead, StartTime: tmpl[3].Int, EndTime: tmpl[4].Int,
			Amount: tmpl[5].Int, Host: tmpl[6].Str}
		if err := src.Table(relstore.EventTable).Insert(relstore.EventRow(ev)); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned cursor pages exactly the epoch-time match set.
	got = append(got, drain(t, cur)...)
	if len(got) != len(want.Rows) {
		t.Fatalf("pinned cursor saw %d rows, epoch match set has %d", len(got), len(want.Rows))
	}
	for i := range got {
		if strings.Join(got[i], "\x00") != strings.Join(want.Rows[i], "\x00") {
			t.Fatalf("row %d: pinned cursor %v != epoch row %v", i, got[i], want.Rows[i])
		}
	}

	// A cursor created after the commit sees the new rows.
	after, err := en.ExecuteTBQL(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(want.Rows)+10 {
		t.Fatalf("post-commit hunt saw %d rows, want %d", len(after.Rows), len(want.Rows)+10)
	}
}

// TestCursorEpochIsolationGraph: the same isolation for a path-pattern
// cursor — graph edges committed after its mark stay invisible.
func TestCursorEpochIsolationGraph(t *testing.T) {
	en := leakageEngine(t, 300)
	want, err := en.ExecuteTBQL(pathTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("no path rows; fixture broken")
	}

	cur, err := en.ExecuteTBQLCursor(pathTBQL)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	// Duplicate an existing read edge under a fresh ID: one more 1-hop
	// path for any post-mark reader.
	g := en.Graph.Shard(0)
	gr, err := g.Query(`MATCH (a:Process)-[e:EVENT {optype: 'read'}]->(b:File) RETURN a, b, e.starttime, e.endtime, e.amount LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Data) == 0 {
		t.Fatal("no read edge to duplicate")
	}
	d := gr.Data[0]
	if _, err := g.AddEdge(graphstore.Edge{From: d[0].Int, To: d[1].Int, Label: "event",
		Props: map[string]graphstore.Value{
			"eventid":   graphstore.IntValue(1 << 40),
			"optype":    graphstore.TextValue("read"),
			"starttime": graphstore.IntValue(d[2].Int),
			"endtime":   graphstore.IntValue(d[3].Int),
			"amount":    graphstore.IntValue(d[4].Int),
			"host":      graphstore.TextValue("h"),
		}}); err != nil {
		t.Fatal(err)
	}

	got := drain(t, cur)
	if len(got) != len(want.Rows) {
		t.Fatalf("pinned path cursor saw %d rows, epoch match set has %d", len(got), len(want.Rows))
	}

	after, err := en.ExecuteTBQL(pathTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) <= len(want.Rows) {
		t.Fatalf("post-commit path hunt saw %d rows, want > %d", len(after.Rows), len(want.Rows))
	}
}

// TestCursorShortCircuitNeedsNoSnapshot: a hunt whose fetch phase
// short-circuits returns an empty cursor with its snapshot references
// already dropped.
func TestCursorShortCircuitNeedsNoSnapshot(t *testing.T) {
	en := leakageEngine(t, 300)
	cur, err := en.ExecuteTBQLCursor(`proc p["%no-such-binary%"] read file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Stats().ShortCircuit {
		t.Fatal("expected a short-circuit hunt")
	}
	if cur.view != nil {
		t.Fatal("short-circuit cursor kept its snapshot")
	}
	if cur.Next() {
		t.Fatal("short-circuit cursor produced a row")
	}
}

// shardedStreamEngine loads two hosts that land on distinct shards of a
// 4-shard store (and reports which shards those are).
func shardedStreamEngine(t *testing.T) (en *Engine, shardA, shardB int) {
	t.Helper()
	en, _ = newShardedEngine(t, 4,
		gen.Config{Seed: 42, Host: "host1", BenignEvents: 200,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}},
		gen.Config{Seed: 43, Host: "host2", BenignEvents: 200},
	)
	shardA = en.Rel.ShardFor("host1")
	shardB = en.Rel.ShardFor("host2")
	if shardA == shardB {
		t.Fatalf("host1 and host2 share shard %d; pick different hosts", shardA)
	}
	return en, shardA, shardB
}

// TestShardedCursorBlocksNoShard: a cursor over an unpruned hunt used
// to pin every shard's read locks; under the epoch design writers to
// every touched shard proceed while it is open — and the cursor's
// remaining pages still reflect only its own epoch.
func TestShardedCursorBlocksNoShard(t *testing.T) {
	en, shardA, shardB := shardedStreamEngine(t)
	want, err := en.ExecuteTBQL(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := en.ExecuteTBQLCursor(wideTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}

	doneA, doneB := make(chan error, 1), make(chan error, 1)
	go writeProbe(en, shardA, 1<<40, doneA)
	go writeProbe(en, shardB, 1<<40+1, doneB)
	expectPrompt(t, doneA)
	expectPrompt(t, doneB)

	got := [][]string{cur.Row()}
	got = append(got, drain(t, cur)...)
	if len(got) != len(want.Rows) {
		t.Fatalf("cursor saw %d rows after cross-shard writes, epoch match set has %d",
			len(got), len(want.Rows))
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCursorHostPruned: a host-pinned cursor snapshots only its
// host's shard (plus shard 0's entity table); writes to both its own
// and other shards proceed while it pages, and its pages stay pinned
// to its epoch.
func TestShardedCursorHostPruned(t *testing.T) {
	en, shardA, shardB := shardedStreamEngine(t)
	const prunedTBQL = `proc p[host = "host1"] read || write file f as e1
return p, f`
	want, err := en.ExecuteTBQL(prunedTBQL)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := en.ExecuteTBQLCursor(prunedTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows; fixture broken")
	}

	// Neither the unpinned shard nor the cursor's own shard queues.
	otherDone := make(chan error, 1)
	go func() {
		ev := &audit.Event{ID: 1 << 41, SrcID: 1, DstID: 2, Op: audit.OpRead,
			StartTime: 1, EndTime: 2, Amount: 1, Host: "host2"}
		otherDone <- en.Rel.Shard(shardB).Table(relstore.EventTable).Insert(relstore.EventRow(ev))
	}()
	expectPrompt(t, otherDone)
	pinnedDone := make(chan error, 1)
	go writeProbe(en, shardA, 1<<40, pinnedDone)
	expectPrompt(t, pinnedDone)

	got := [][]string{cur.Row()}
	got = append(got, drain(t, cur)...)
	if len(got) != len(want.Rows) {
		t.Fatalf("pruned cursor saw %d rows, epoch match set has %d", len(got), len(want.Rows))
	}
	cur.Close()
}

// TestPropagationsSkippedCounted: capping the IN-list size must surface
// the dropped constraints in Stats.PropagationsSkipped instead of
// silently fetching unconstrained tables.
func TestPropagationsSkippedCounted(t *testing.T) {
	// 8 workers share the p variable, so the propagated candidate set
	// has 8 IDs: under a cap of 4 it must be dropped and counted.
	en := fanoutEngine(t, 8, 4, 4)
	full, err := en.ExecuteTBQL(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.PropagationsSkipped != 0 {
		t.Errorf("uncapped run skipped %d propagations", full.Stats.PropagationsSkipped)
	}
	if full.Stats.Propagations == 0 {
		t.Fatal("uncapped run should propagate the shared variable")
	}

	en.MaxPropagatedIDs = 4
	capped, err := en.ExecuteTBQL(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Rows) != len(full.Rows) {
		t.Fatalf("capped run broke correctness: %d rows, want %d", len(capped.Rows), len(full.Rows))
	}
	if capped.Stats.PropagationsSkipped == 0 {
		t.Error("capped run should count skipped propagations")
	}
	if capped.Stats.Propagations >= full.Stats.Propagations {
		t.Errorf("capped run propagated %d, uncapped %d",
			capped.Stats.Propagations, full.Stats.Propagations)
	}
}

// TestExplainPropagated: Explain must name the entity variables each
// pattern shares with earlier scheduled patterns.
func TestExplainPropagated(t *testing.T) {
	en := leakageEngine(t, 100)
	parsed, err := tbql.Parse(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := en.Explain(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps[0].Propagated) != 0 {
		t.Errorf("first pattern cannot receive propagation: %v", eps[0].Propagated)
	}
	var total int
	for _, ep := range eps[1:] {
		total += len(ep.Propagated)
	}
	// Every later Fig. 2 pattern chains to an earlier one through a
	// shared process or file variable.
	if total < len(eps)-1 {
		t.Errorf("expected a propagated variable per chained pattern, got %d across %v", total, eps)
	}

	en.DisablePropagation = true
	eps, err = en.Explain(parsed)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if len(ep.Propagated) != 0 {
			t.Errorf("propagation disabled but %s lists %v", ep.Name, ep.Propagated)
		}
	}
}

// TestCursorLazyJoinWork: reading one row of a high-fanout hunt must do
// far less join work than draining it — the streaming executor's whole
// point.
func TestCursorLazyJoinWork(t *testing.T) {
	en := fanoutEngine(t, 8, 16, 16) // 8*16*16 = 2048 matches
	cur, err := en.ExecuteTBQLCursor(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no rows")
	}
	firstPage := cur.Stats().JoinCandidates
	cur.Close()

	res, err := en.ExecuteTBQL(fanoutTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8*16*16 {
		t.Fatalf("full drain rows = %d", len(res.Rows))
	}
	full := res.Stats.JoinCandidates
	if firstPage*10 > full {
		t.Errorf("first row explored %d candidates, full drain %d: join is not lazy",
			firstPage, full)
	}
}
