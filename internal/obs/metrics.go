package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram whose Observe path is lock-free:
// per-bucket atomic counters plus a CAS loop over the float64 bit
// pattern of the running sum. That keeps observation safe on the ingest
// hot path, where a mutex would serialize committers. Buckets are
// cumulative only at render time; internally each counter holds its own
// band. A nil *Histogram ignores observations.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds, +Inf implied after the last

	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf band
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (+Inf is implicit). The name must be a valid Prometheus metric name.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		name:    name,
		help:    help,
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records one value. Safe on nil, safe for concurrent use, and
// never blocks: two atomic adds plus a bounded CAS retry on the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0. Safe on nil.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets are the default latency bounds in seconds, 100µs up to
// 10s, wide enough for everything from a warm plan-cache hunt to a
// degraded fsync.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// EpochBuckets bound watch delivery lag measured in whole epochs behind
// the commit clock; a healthy watch delivers at lag 0 or 1.
var EpochBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// Metrics bundles the histograms the daemon threads through the stack.
// Every field may be observed through a nil *Metrics receiver, so layers
// accept the bundle optionally and pay one pointer test when telemetry
// is off.
type Metrics struct {
	// HuntFirstPage is the wall time of POST /hunt from request parse to
	// the first page rendered.
	HuntFirstPage *Histogram
	// IngestCommit is the serialized commit section of one ingest chunk:
	// stage, WAL append, store publish, epoch announce.
	IngestCommit *Histogram
	// WALAppend is the encode+write of one commit record into the log
	// file, excluding fsync.
	WALAppend *Histogram
	// WALFsync is the duration of one group-committed fsync.
	WALFsync *Histogram
	// StandingAdvance is one standing hunt's incremental Advance over a
	// commit delta.
	StandingAdvance *Histogram
	// WatchDeliveryLag is how many epochs behind the commit clock a watch
	// batch is at delivery to its subscriber.
	WatchDeliveryLag *Histogram
}

// NewMetrics allocates the full histogram bundle with default buckets.
func NewMetrics() *Metrics {
	return &Metrics{
		HuntFirstPage:    NewHistogram("threatraptor_hunt_first_page_seconds", "Wall time of POST /hunt from parse to first page rendered.", DurationBuckets),
		IngestCommit:     NewHistogram("threatraptor_ingest_commit_seconds", "Serialized commit latency of one ingest chunk (stage, WAL, publish, announce).", DurationBuckets),
		WALAppend:        NewHistogram("threatraptor_wal_append_seconds", "Encode and write of one WAL commit record, excluding fsync.", DurationBuckets),
		WALFsync:         NewHistogram("threatraptor_wal_fsync_seconds", "Duration of one group-committed WAL fsync.", DurationBuckets),
		StandingAdvance:  NewHistogram("threatraptor_standing_advance_seconds", "Incremental Advance latency of one standing hunt over a commit delta.", DurationBuckets),
		WatchDeliveryLag: NewHistogram("threatraptor_watch_delivery_lag_epochs", "Epochs behind the commit clock at watch batch delivery.", EpochBuckets),
	}
}

// Register adds the bundle's histograms to a registry. Safe on nil.
func (m *Metrics) Register(r *Registry) {
	if m == nil || r == nil {
		return
	}
	for _, h := range []*Histogram{
		m.HuntFirstPage, m.IngestCommit, m.WALAppend,
		m.WALFsync, m.StandingAdvance, m.WatchDeliveryLag,
	} {
		if h != nil {
			r.AddHistogram(h)
		}
	}
}

// ObserveIngestCommit, ObserveWALAppend, ObserveWALFsync and
// ObserveStandingAdvance are nil-safe shorthands so call sites do not
// have to guard both the bundle and the histogram.

func (m *Metrics) ObserveIngestCommit(t0 time.Time) {
	if m != nil {
		m.IngestCommit.ObserveSince(t0)
	}
}

func (m *Metrics) ObserveWALAppend(t0 time.Time) {
	if m != nil {
		m.WALAppend.ObserveSince(t0)
	}
}

func (m *Metrics) ObserveWALFsync(t0 time.Time) {
	if m != nil {
		m.WALFsync.ObserveSince(t0)
	}
}

func (m *Metrics) ObserveStandingAdvance(t0 time.Time) {
	if m != nil {
		m.StandingAdvance.ObserveSince(t0)
	}
}

// ObserveWatchLag records a delivery lag in epochs.
func (m *Metrics) ObserveWatchLag(epochs uint64) {
	if m != nil {
		m.WatchDeliveryLag.Observe(float64(epochs))
	}
}

// metricKind discriminates exposition TYPE lines.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind
	fn   func() float64 // counter/gauge value at scrape time
	hist *Histogram
}

// Registry collects metrics for /metrics exposition. Counters and gauges
// are registered as closures over the owning component's existing atomic
// counters, so a scrape reads live values without double bookkeeping.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// CounterFunc registers a monotonic counter read from fn at scrape time.
// By convention the name ends in _total.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// AddHistogram registers an existing histogram.
func (r *Registry) AddHistogram(h *Histogram) {
	r.add(metric{name: h.name, help: h.help, kind: kindHistogram, hist: h})
}

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4), metrics sorted by name for deterministic scrapes.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var b strings.Builder
	for _, m := range ms {
		b.WriteString("# HELP ")
		b.WriteString(m.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(m.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(m.name)
		switch m.kind {
		case kindCounter:
			b.WriteString(" counter\n")
			writeSample(&b, m.name, "", m.fn())
		case kindGauge:
			b.WriteString(" gauge\n")
			writeSample(&b, m.name, "", m.fn())
		case kindHistogram:
			b.WriteString(" histogram\n")
			writeHistogram(&b, m.hist)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeHistogram(b *strings.Builder, h *Histogram) {
	// Snapshot buckets first so the cumulative sums are internally
	// consistent even while observations continue; count is rendered as
	// the +Inf cumulative total for the same reason.
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		writeSample(b, h.name+"_bucket", `{le="`+formatFloat(bound)+`"}`, float64(cum))
	}
	cum += counts[len(counts)-1]
	writeSample(b, h.name+"_bucket", `{le="+Inf"}`, float64(cum))
	writeSample(b, h.name+"_sum", "", h.Sum())
	writeSample(b, h.name+"_count", "", float64(cum))
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
