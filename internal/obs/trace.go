// Package obs is ThreatRaptor's self-contained telemetry layer: span
// tracing for the hunt pipeline, and Prometheus-text metrics built from
// hand-rolled atomic counters, gauges, and fixed-bucket histograms. It
// depends only on the standard library so every other package can import
// it without dragging in an exporter.
//
// Tracing is allocation-conscious by design: a Trace holds one
// preallocated flat span slice guarded by a mutex, spans reference their
// parent by index, and every method is safe on a nil *Trace so disabled
// tracing costs a single pointer test at each instrumentation point.
package obs

import (
	"hash/fnv"
	"strconv"
	"sync"
	"time"
)

// Span is one timed stage of a hunt pipeline. Start is relative to the
// owning trace's origin; Dur is -1 while the span is still open. Parent
// is the index of the enclosing span in the trace's flat slice, or -1
// for a root span.
type Span struct {
	Name   string
	Note   string
	Parent int
	Start  time.Duration
	Dur    time.Duration
}

// Trace records the span tree of a single hunt, cursor, or explain
// request. The zero value is not usable; call NewTrace. A nil *Trace is
// valid everywhere and records nothing.
type Trace struct {
	t0 time.Time

	mu    sync.Mutex
	reqID string
	spans []Span
}

// spanPrealloc covers a typical traced hunt (parse, analyze, snapshot,
// cost, fetch, a few waves with a few shard jobs, first row, page)
// without growing the slice.
const spanPrealloc = 24

// NewTrace starts an empty trace whose clock begins now.
func NewTrace() *Trace {
	return &Trace{
		t0:    time.Now(),
		spans: make([]Span, 0, spanPrealloc),
	}
}

// SetRequestID attaches the HTTP request id so the trace rendered into a
// response (and the slow-hunt log line) can be correlated with access
// logs. Safe on nil.
func (t *Trace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reqID = id
	t.mu.Unlock()
}

// Begin opens a span under parent (-1 for a root span) and returns its
// index for End/EndNote. On a nil trace it returns -1, which End and
// EndNote ignore, so instrumentation never has to branch.
func (t *Trace) Begin(name string, parent int) int {
	if t == nil {
		return -1
	}
	at := time.Since(t.t0)
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: at, Dur: -1})
	t.mu.Unlock()
	return idx
}

// End closes the span at idx. Safe on nil traces and negative indexes.
func (t *Trace) End(idx int) { t.EndNote(idx, "") }

// EndNote closes the span at idx and attaches a short annotation such as
// "plan_cache=hit" or "reordered". Safe on nil traces and negative
// indexes.
func (t *Trace) EndNote(idx int, note string) {
	if t == nil || idx < 0 {
		return
	}
	at := time.Since(t.t0)
	t.mu.Lock()
	if idx < len(t.spans) {
		sp := &t.spans[idx]
		sp.Dur = at - sp.Start
		if note != "" {
			sp.Note = note
		}
	}
	t.mu.Unlock()
}

// Note annotates an open or closed span without touching its timing.
func (t *Trace) Note(idx int, note string) {
	if t == nil || idx < 0 {
		return
	}
	t.mu.Lock()
	if idx < len(t.spans) {
		t.spans[idx].Note = note
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in creation order. Open
// spans have Dur == -1.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// SpanJSON is the wire form of one span: microsecond offsets, nested
// children. It is what /hunt and /explain embed under "trace".
type SpanJSON struct {
	Name     string     `json:"name"`
	StartUs  int64      `json:"start_us"`
	DurUs    int64      `json:"dur_us"`
	Note     string     `json:"note,omitempty"`
	Children []SpanJSON `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace.
type TraceJSON struct {
	RequestID string     `json:"request_id,omitempty"`
	TotalUs   int64      `json:"total_us"`
	Spans     []SpanJSON `json:"spans"`
}

// JSON renders the span tree for embedding in a response. Open spans are
// closed "as of now" so a mid-flight render still shows sane durations.
// Returns nil on a nil trace.
func (t *Trace) JSON() *TraceJSON {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	reqID := t.reqID
	t.mu.Unlock()

	out := &TraceJSON{RequestID: reqID, TotalUs: now.Microseconds()}
	// Children are attached in creation order; Begin guarantees a parent
	// index is always smaller than its child's, so one forward pass and a
	// node table suffice.
	nodes := make([]SpanJSON, len(spans))
	for i, sp := range spans {
		dur := sp.Dur
		if dur < 0 {
			dur = now - sp.Start
		}
		nodes[i] = SpanJSON{
			Name:    sp.Name,
			StartUs: sp.Start.Microseconds(),
			DurUs:   dur.Microseconds(),
			Note:    sp.Note,
		}
	}
	// Attach leaves to parents back to front so each subtree is complete
	// before it is itself attached (a child never precedes its parent).
	for i := len(spans) - 1; i >= 0; i-- {
		p := spans[i].Parent
		if p >= 0 && p < len(nodes) {
			nodes[p].Children = append([]SpanJSON{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, sp := range spans {
		if sp.Parent < 0 {
			out.Spans = append(out.Spans, nodes[i])
		}
	}
	return out
}

// Breakdown flattens the root spans into a compact "name=dur name=dur"
// string for the slow-hunt log line. Returns "" on a nil trace.
func (t *Trace) Breakdown() string {
	if t == nil {
		return ""
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	var b []byte
	for _, sp := range t.spans {
		if sp.Parent >= 0 {
			continue
		}
		dur := sp.Dur
		if dur < 0 {
			dur = now - sp.Start
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, sp.Name...)
		b = append(b, '=')
		b = append(b, dur.Round(time.Microsecond).String()...)
	}
	return string(b)
}

// Fingerprint hashes a query's text to a stable 64-bit id, the same
// fnv64a scheme the standing-hunt resume tokens use, rendered as 16 hex
// digits for log lines and /debug/hunts.
func Fingerprint(query string) string {
	h := fnv.New64a()
	h.Write([]byte(query))
	s := strconv.FormatUint(h.Sum64(), 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}
