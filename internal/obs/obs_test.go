package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeAndBreakdown(t *testing.T) {
	tr := NewTrace()
	tr.SetRequestID("req-1")
	root := tr.Begin("fetch", -1)
	wave := tr.Begin("wave", root)
	job := tr.Begin("p1", wave)
	tr.EndNote(job, "shard 0")
	tr.End(wave)
	tr.EndNote(root, "plan_cache=hit")
	join := tr.Begin("first_row", -1)
	tr.End(join)

	js := tr.JSON()
	if js == nil || js.RequestID != "req-1" {
		t.Fatalf("JSON = %+v, want request id req-1", js)
	}
	if len(js.Spans) != 2 {
		t.Fatalf("got %d root spans, want 2: %+v", len(js.Spans), js.Spans)
	}
	f := js.Spans[0]
	if f.Name != "fetch" || f.Note != "plan_cache=hit" {
		t.Fatalf("root span = %+v", f)
	}
	if len(f.Children) != 1 || f.Children[0].Name != "wave" {
		t.Fatalf("fetch children = %+v", f.Children)
	}
	w := f.Children[0]
	if len(w.Children) != 1 || w.Children[0].Name != "p1" || w.Children[0].Note != "shard 0" {
		t.Fatalf("wave children = %+v", w.Children)
	}
	bd := tr.Breakdown()
	if !strings.Contains(bd, "fetch=") || !strings.Contains(bd, "first_row=") {
		t.Fatalf("Breakdown() = %q", bd)
	}
	if strings.Contains(bd, "wave=") {
		t.Fatalf("Breakdown() should only list root spans, got %q", bd)
	}
}

func TestTraceOpenSpanRendersElapsed(t *testing.T) {
	tr := NewTrace()
	tr.Begin("open", -1)
	time.Sleep(2 * time.Millisecond)
	js := tr.JSON()
	if len(js.Spans) != 1 || js.Spans[0].DurUs <= 0 {
		t.Fatalf("open span should render elapsed time, got %+v", js.Spans)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	idx := tr.Begin("x", -1)
	if idx != -1 {
		t.Fatalf("nil Begin = %d, want -1", idx)
	}
	tr.End(idx)
	tr.EndNote(idx, "note")
	tr.Note(idx, "note")
	tr.SetRequestID("rid")
	if tr.JSON() != nil || tr.Breakdown() != "" || tr.Spans() != nil {
		t.Fatal("nil trace should render empty")
	}
}

func TestFingerprintStableAndPadded(t *testing.T) {
	a := Fingerprint("proc p return p")
	if len(a) != 16 {
		t.Fatalf("Fingerprint length = %d, want 16 hex digits (%q)", len(a), a)
	}
	if a != Fingerprint("proc p return p") {
		t.Fatal("Fingerprint not stable")
	}
	if a == Fingerprint("proc q return q") {
		t.Fatal("distinct queries should fingerprint differently")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram("x_seconds", "help", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // le 0.001
	h.Observe(0.001)  // boundary: still le 0.001
	h.Observe(0.05)   // le 0.1
	h.Observe(2)      // +Inf
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got < 2.0514 || got > 2.0516 {
		t.Fatalf("Sum = %v", got)
	}
	var b strings.Builder
	r := NewRegistry()
	r.AddHistogram(h)
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.001"} 2`,
		`x_seconds_bucket{le="0.01"} 2`,
		`x_seconds_bucket{le="0.1"} 3`,
		`x_seconds_bucket{le="+Inf"} 4`,
		"x_seconds_count 4",
		"# TYPE x_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("c_seconds", "help", DurationBuckets)
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
	want := float64(workers*per) * 0.001
	if got := h.Sum(); got < want-0.0001 || got > want+0.0001 {
		t.Fatalf("Sum = %v, want ~%v", got, want)
	}
}

func TestNilHistogramAndMetricsSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read zero")
	}
	var m *Metrics
	m.ObserveIngestCommit(time.Now())
	m.ObserveWALAppend(time.Now())
	m.ObserveWALFsync(time.Now())
	m.ObserveStandingAdvance(time.Now())
	m.ObserveWatchLag(3)
	m.Register(NewRegistry())
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("b_total", "b counter", func() float64 { return 7 })
	r.GaugeFunc("a_gauge", "a gauge", func() float64 { return 1.5 })
	m := NewMetrics()
	m.HuntFirstPage.Observe(0.002)
	m.Register(r)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Deterministic ordering: sorted by name.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE a_gauge gauge", "a_gauge 1.5",
		"# TYPE b_total counter", "b_total 7",
		"# TYPE threatraptor_hunt_first_page_seconds histogram",
		"threatraptor_hunt_first_page_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("dup", "g", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.GaugeFunc("dup", "g", func() float64 { return 0 })
}
