// Package wal is ThreatRaptor's durability subsystem: a batch-atomic
// write-ahead log on the ingest path, periodic immutable segment
// snapshots, restart recovery (segments + WAL tail replay), and
// low-water compaction. Every ingest commit appends one
// length-prefixed, CRC32-checksummed record — the commit's epoch, its
// newly interned entities, and its stored events (the graph edges are
// derived from the same events on replay) — so kill -9 at any instant
// loses at most the un-fsynced tail, never a committed-and-acknowledged
// batch.
//
// The package talks to the disk only through the FS interface, so the
// crash-recovery tests can inject faults (fail-at-Nth-write, short
// writes, fsync errors) with FaultFS instead of needing a real faulty
// disk. Any write or sync failure flips the Log into a permanent
// degraded state: ingestion must stop (the daemon answers 503), reads
// keep working, and nothing panics.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the subset of *os.File the log needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS is the filesystem surface the log runs on. OSFS is the real disk;
// FaultFS wraps any FS with injectable faults.
type FS interface {
	MkdirAll(path string) error
	// OpenFile opens with the given os.O_* flags (mode 0o644 for creates).
	OpenFile(name string, flag int) (File, error)
	Remove(name string) error
	// ReadDir lists the names (not paths) of the directory's entries in
	// lexical order.
	ReadDir(name string) ([]string, error)
	// Size reports the file's size in bytes.
	Size(name string) (int64, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so renames/creates within it are durable.
	SyncDir(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OSFS) OpenFile(name string, flag int) (File, error) {
	return os.OpenFile(name, flag, 0o644)
}

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FaultFS wraps an FS with injectable fault points for the
// crash-recovery tests: fail the Nth write (optionally after a short
// write, modeling a torn record), and fail fsyncs. The zero fault
// configuration passes everything through.
type FaultFS struct {
	Inner FS

	mu sync.Mutex
	// writesLeft counts successful writes remaining before writes start
	// failing; -1 means writes never fail.
	writesLeft int
	// short makes the first failing write persist a prefix of its bytes
	// before erroring, modeling a torn (partial) write.
	short bool
	// failSyncs makes File.Sync and SyncDir fail.
	failSyncs bool
	// writes counts every File.Write observed (for test assertions).
	writes int
}

// NewFaultFS wraps inner (nil means the real filesystem) with no faults
// armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{Inner: inner, writesLeft: -1}
}

// FailWritesAfter arms the write fault: the next n writes succeed, and
// every write after that fails. With short set, the first failing write
// persists the first half of its bytes before reporting the error.
func (f *FaultFS) FailWritesAfter(n int, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writesLeft = n
	f.short = short
}

// FailSyncs toggles the fsync fault (File.Sync and SyncDir fail).
func (f *FaultFS) FailSyncs(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = v
}

// Writes reports how many File.Write calls have been observed.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// ErrInjected is the error every armed FaultFS fault reports.
var ErrInjected = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "wal: injected fault" }

func (f *FaultFS) MkdirAll(path string) error { return f.Inner.MkdirAll(path) }

func (f *FaultFS) OpenFile(name string, flag int) (File, error) {
	file, err := f.Inner.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Remove(name string) error             { return f.Inner.Remove(name) }
func (f *FaultFS) ReadDir(name string) ([]string, error) { return f.Inner.ReadDir(name) }
func (f *FaultFS) Size(name string) (int64, error)      { return f.Inner.Size(name) }
func (f *FaultFS) Truncate(name string, size int64) error {
	return f.Inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	fail := f.failSyncs
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.Inner.SyncDir(name)
}

type faultFile struct {
	fs *FaultFS
	f  File
}

func (w *faultFile) Read(p []byte) (int, error) { return w.f.Read(p) }
func (w *faultFile) Close() error               { return w.f.Close() }

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	w.fs.writes++
	fail := w.fs.writesLeft == 0
	short := fail && w.fs.short
	if w.fs.writesLeft > 0 {
		w.fs.writesLeft--
	}
	// A short write only tears the first failing write; later failing
	// writes persist nothing.
	if short {
		w.fs.short = false
	}
	w.fs.mu.Unlock()
	if !fail {
		return w.f.Write(p)
	}
	if short && len(p) > 1 {
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	return 0, ErrInjected
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	fail := w.fs.failSyncs
	w.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return w.f.Sync()
}
