package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/audit"
)

// Commit is one durable ingest commit: the epoch that names it, the
// entities the batch newly interned, and the events it stored (post-CPR
// when reduction is on — exactly the rows the stores hold). The graph
// edges are not written separately: both backends derive their rows
// from the same entities and events on replay.
type Commit struct {
	Epoch    uint64
	Entities []*audit.Entity
	Events   []*audit.Event
}

// Framing: every record is [length u32le][crc32c u32le][payload], where
// length counts payload bytes and the CRC covers the payload. A record
// whose frame runs past the end of the file, whose length is zero or
// implausibly large, or whose CRC does not match is a torn or corrupt
// tail: recovery stops there and truncates.
const (
	frameHeaderLen = 8
	// maxRecordLen bounds a single record so a corrupt length field can
	// never drive a multi-gigabyte allocation.
	maxRecordLen = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a record that is present but fails validation (CRC
// mismatch, bad length, or undecodable payload) — as opposed to a clean
// end of file.
var ErrCorrupt = errors.New("wal: corrupt record")

// appendUint appends v as an unsigned varint.
func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// appendInt appends v as a zigzag varint.
func appendInt(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendEntity(b []byte, e *audit.Entity) []byte {
	b = appendInt(b, e.ID)
	b = append(b, byte(e.Type))
	b = appendString(b, e.Host)
	b = appendString(b, e.Path)
	b = appendString(b, e.ExeName)
	b = appendInt(b, int64(e.PID))
	b = appendString(b, e.SrcIP)
	b = appendInt(b, int64(e.SrcPort))
	b = appendString(b, e.DstIP)
	b = appendInt(b, int64(e.DstPort))
	b = appendString(b, e.Proto)
	return b
}

func appendEvent(b []byte, ev *audit.Event) []byte {
	b = appendInt(b, ev.ID)
	b = appendInt(b, ev.SrcID)
	b = appendInt(b, ev.DstID)
	b = append(b, byte(ev.Op))
	b = appendInt(b, ev.StartTime)
	b = appendInt(b, ev.EndTime)
	b = appendInt(b, ev.Amount)
	b = appendString(b, ev.Host)
	return b
}

// appendCommitPayload appends the commit's payload bytes (no frame).
func appendCommitPayload(b []byte, c *Commit) []byte {
	b = appendUint(b, c.Epoch)
	b = appendUint(b, uint64(len(c.Entities)))
	for _, e := range c.Entities {
		b = appendEntity(b, e)
	}
	b = appendUint(b, uint64(len(c.Events)))
	for _, ev := range c.Events {
		b = appendEvent(b, ev)
	}
	return b
}

// AppendRecord appends the commit as one framed record to b and returns
// the extended slice. The frame is what Append writes in a single Write
// call, so a crash tears at most the final record.
func AppendRecord(b []byte, c *Commit) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b = appendCommitPayload(b, c)
	payload := b[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

// decoder walks a payload buffer; every read is bounds-checked so a
// corrupt payload yields an error, never a panic.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) string() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string past end")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) entity() *audit.Entity {
	e := &audit.Entity{}
	e.ID = d.int()
	e.Type = audit.EntityType(d.byte())
	e.Host = d.string()
	e.Path = d.string()
	e.ExeName = d.string()
	e.PID = int(d.int())
	e.SrcIP = d.string()
	e.SrcPort = int(d.int())
	e.DstIP = d.string()
	e.DstPort = int(d.int())
	e.Proto = d.string()
	return e
}

func (d *decoder) event() *audit.Event {
	ev := &audit.Event{}
	ev.ID = d.int()
	ev.SrcID = d.int()
	ev.DstID = d.int()
	ev.Op = audit.OpType(d.byte())
	ev.StartTime = d.int()
	ev.EndTime = d.int()
	ev.Amount = d.int()
	ev.Host = d.string()
	return ev
}

// DecodeCommit decodes one record payload. It never panics: corrupt
// payloads return ErrCorrupt-wrapped errors, and element counts are
// validated against the remaining bytes before allocation so a flipped
// count byte cannot drive an outsized allocation.
func DecodeCommit(payload []byte) (*Commit, error) {
	d := &decoder{b: payload}
	c := &Commit{Epoch: d.uint()}
	nEnt := d.uint()
	if d.err == nil && nEnt > uint64(len(payload)) {
		d.fail("entity count past end")
	}
	if d.err == nil && nEnt > 0 {
		c.Entities = make([]*audit.Entity, 0, nEnt)
		for i := uint64(0); i < nEnt && d.err == nil; i++ {
			c.Entities = append(c.Entities, d.entity())
		}
	}
	nEvt := d.uint()
	if d.err == nil && nEvt > uint64(len(payload)) {
		d.fail("event count past end")
	}
	if d.err == nil && nEvt > 0 {
		c.Events = make([]*audit.Event, 0, nEvt)
		for i := uint64(0); i < nEvt && d.err == nil; i++ {
			c.Events = append(c.Events, d.event())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-d.off)
	}
	return c, nil
}

// Reader decodes framed commit records from a stream. Next returns
// io.EOF at a clean end of stream and an ErrCorrupt-wrapped error at a
// torn or corrupt record; Offset reports how many bytes of intact
// records have been consumed — the truncation point on corruption.
type Reader struct {
	r   *bufio.Reader
	off int64
	buf []byte
}

// NewReader wraps r for record decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Offset is the byte offset just past the last successfully decoded
// record.
func (r *Reader) Offset() int64 { return r.off }

// Next decodes the next record. io.EOF means a clean end; any other
// error means the stream is torn or corrupt at Offset.
func (r *Reader) Next() (*Commit, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		// A partial header is a torn tail.
		return nil, fmt.Errorf("%w: torn frame header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	if cap(r.buf) < int(n) {
		// Grow via the reader, not blindly: a corrupt length under the cap
		// still only allocates what the stream can actually supply.
		r.buf = make([]byte, 0, min(int(n), 1<<20))
	}
	r.buf = r.buf[:0]
	for len(r.buf) < int(n) {
		chunk := min(int(n)-len(r.buf), 1<<20)
		start := len(r.buf)
		r.buf = append(r.buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r.r, r.buf[start:]); err != nil {
			return nil, fmt.Errorf("%w: torn record body", ErrCorrupt)
		}
	}
	if crc32.Checksum(r.buf, crcTable) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	c, err := DecodeCommit(r.buf)
	if err != nil {
		return nil, err
	}
	r.off += int64(frameHeaderLen) + int64(n)
	return c, nil
}
