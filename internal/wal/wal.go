package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FsyncMode selects the log's durability/throughput trade-off.
type FsyncMode int

const (
	// FsyncBatched fsyncs on a timer: an acknowledged batch may lose up
	// to one interval of commits on a crash, but concurrent ingests never
	// wait on the disk.
	FsyncBatched FsyncMode = iota
	// FsyncAlways fsyncs before every acknowledgement, with group commit:
	// concurrent ingests that append while a sync is in flight share the
	// next one. An acknowledged batch survives kill -9.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache (and rotation /
	// shutdown). Fastest; a crash loses whatever the kernel had not
	// flushed.
	FsyncNever
)

// Policy is a parsed -fsync flag value.
type Policy struct {
	Mode FsyncMode
	// Interval is the batched-mode sync period (ignored otherwise).
	Interval time.Duration
}

func (p Policy) String() string {
	switch p.Mode {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return p.Interval.String()
	}
}

// ParsePolicy parses a -fsync flag value: "always", "never", or a
// batched-sync interval such as "100ms".
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return Policy{Mode: FsyncAlways}, nil
	case "never":
		return Policy{Mode: FsyncNever}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return Policy{}, fmt.Errorf("wal: -fsync wants always, never, or a positive interval like 100ms (got %q)", s)
	}
	return Policy{Mode: FsyncBatched, Interval: d}, nil
}

// Config tunes a Log.
type Config struct {
	// Fsync is the durability policy (zero value: batched at 100ms).
	Fsync Policy
	// SegmentInterval is how often pending commits are flushed into an
	// immutable segment set (and the WAL rotated). 0 disables segment
	// snapshots: the WAL grows until shutdown, and recovery replays it
	// end to end.
	SegmentInterval time.Duration
	// Retention ages out events older than this at compaction (0 = keep
	// forever). Age-out applies to the on-disk segments immediately and
	// to the in-memory store at the next restart.
	Retention time.Duration
	// Shards partitions segment event files (match the System's shard
	// count; 0 means 1).
	Shards int
	// FS overrides the filesystem (nil = the real disk). Tests inject
	// FaultFS here.
	FS FS
	// Now overrides the clock for retention cutoffs (nil = time.Now).
	Now func() time.Time
	// Metrics, when set, receives append and fsync duration
	// observations (obs histograms; lock-free, nil-safe).
	Metrics *obs.Metrics
}

// DefaultFsyncInterval is the batched-mode sync period when none is
// configured.
const DefaultFsyncInterval = 100 * time.Millisecond

// cleanMarker is the clean-shutdown marker file: present exactly when
// the previous process closed the log cleanly, so recovery can treat a
// torn WAL tail as the hard error it then is instead of expected crash
// debris. It is removed as soon as recovery has read it.
const cleanMarker = "CLEAN"

// ErrDegraded marks operations refused because the log hit a disk
// fault and went read-only.
var ErrDegraded = errors.New("wal: degraded")

// RecoveryInfo summarises one restart recovery.
type RecoveryInfo struct {
	// Epoch is the highest epoch recovered (segments + WAL tail).
	Epoch uint64 `json:"epoch"`
	// Commits is how many commits were replayed into the stores.
	Commits int `json:"commits"`
	// SegmentSets is how many complete segment sets were loaded.
	SegmentSets int `json:"segment_sets"`
	// WALRecords is how many records the WAL tail replay applied.
	WALRecords int `json:"wal_records"`
	// DroppedBytes counts bytes discarded at the first torn or corrupt
	// WAL record (the un-fsynced tail a crash may leave).
	DroppedBytes int64 `json:"dropped_bytes"`
	// Clean reports that the previous shutdown wrote the clean marker,
	// so no tail truncation was even possible.
	Clean bool `json:"clean"`
}

// Stats is a point-in-time observability snapshot of the log.
type Stats struct {
	Records        int64  `json:"records"`
	Syncs          int64  `json:"syncs"`
	SegmentSets    int    `json:"segment_sets"`
	SegmentFlushes int64  `json:"segment_flushes"`
	Compactions    int64  `json:"compactions"`
	PendingCommits int    `json:"pending_commits"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Ack waits for a commit's configured durability; callers invoke it
// after releasing their own locks so concurrent ingests share syncs.
// A nil Ack (batched/never modes) needs no wait.
type Ack func() error

// walFile is one on-disk WAL file: it holds records with epochs in
// (base, next file's base] — the active (last) file up to the latest
// appended epoch.
type walFile struct {
	name string
	base uint64
}

// Log is the durability manager for one data directory: the active
// WAL file, the segment sets, and the background sync/flush loops.
//
// Locking: mu guards the active file, the pending delta list, and the
// file/set inventories. Appends hold mu only for the encode+write;
// syncs run under syncMu against atomically published sequence
// numbers, so a group commit's fsync never blocks the next append.
type Log struct {
	dir string
	fs  FS
	cfg Config
	now func() time.Time

	mu       sync.Mutex
	file     File
	fileName string
	files    []walFile // ascending base; last is active
	// lastEpoch is the highest epoch ever appended (or recovered).
	lastEpoch uint64
	// segCovered is the highest epoch durable in segment sets; WAL
	// records at or below it are redundant.
	segCovered uint64
	// pending holds commits appended (or replayed from the WAL tail)
	// but not yet flushed into a segment set. References only: the
	// entities and events are the same immutable objects the stores
	// hold.
	pending []*Commit
	sets    []segSet
	encBuf  []byte
	// replayed flips once Replay has run; Append refuses before that.
	replayed bool
	closed   bool

	// appendSeq numbers appended records; syncedSeq trails it at the
	// last fsync. Group commit: an Ack whose seq <= syncedSeq returns
	// immediately, otherwise one waiter syncs for everyone queued.
	appendSeq atomic.Uint64
	syncedSeq atomic.Uint64
	syncMu    sync.Mutex

	degradedReason atomic.Pointer[string]

	lowWater atomic.Pointer[func() (uint64, bool)]

	records        atomic.Int64
	syncs          atomic.Int64
	segmentFlushes atomic.Int64
	compactions    atomic.Int64

	recovery RecoveryInfo

	stop     chan struct{}
	stopOnce sync.Once
	loops    sync.WaitGroup
}

// Open prepares a Log on dir. It creates the directory layout but does
// not read or replay anything yet: call Replay (exactly once, even on
// a fresh directory) to recover existing state and start the
// background sync and segment loops; only then may Append be called.
func Open(dir string, cfg Config) (*Log, error) {
	if cfg.FS == nil {
		cfg.FS = OSFS{}
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Fsync.Mode == FsyncBatched && cfg.Fsync.Interval <= 0 {
		cfg.Fsync.Interval = DefaultFsyncInterval
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if err := cfg.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := cfg.FS.MkdirAll(filepath.Join(dir, segmentsDir)); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{
		dir:  dir,
		fs:   cfg.FS,
		cfg:  cfg,
		now:  now,
		stop: make(chan struct{}),
	}, nil
}

// Dir returns the log's data directory.
func (l *Log) Dir() string { return l.dir }

func walName(base uint64) string { return fmt.Sprintf("wal-%d.log", base) }

func parseWalName(name string) (uint64, bool) {
	var base uint64
	var rest string
	if n, _ := fmt.Sscanf(name, "wal-%d.%s", &base, &rest); n != 2 || rest != "log" {
		return 0, false
	}
	return base, true
}

// Replay recovers the directory's durable state — newest valid segment
// sets in range order, then the WAL tail — invoking apply once per
// recovered commit, in an order safe to load (entities always precede
// the events that reference them). Within each segment set the
// per-shard events files load concurrently, so apply must be safe for
// concurrent calls carrying events of different shards; entity commits
// and the WAL tail still apply sequentially. The WAL is truncated at
// the first torn or corrupt record; everything after it (including
// later WAL files) is dropped and counted. Replay then retains the WAL
// tail's commits as the pending delta set (the next segment flush
// covers them), resumes appending, and starts the background sync and
// segment-flush loops.
func (l *Log) Replay(apply func(*Commit) error) (RecoveryInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed {
		return l.recovery, errors.New("wal: Replay called twice")
	}
	info := RecoveryInfo{}

	// Clean marker: read-and-remove, so a crash after this startup is
	// never mislabeled clean.
	markerPath := filepath.Join(l.dir, cleanMarker)
	if _, err := l.fs.Size(markerPath); err == nil {
		info.Clean = true
		if err := l.fs.Remove(markerPath); err != nil {
			return info, fmt.Errorf("wal: removing clean marker: %w", err)
		}
	}

	// Segment sets: sweep crash debris, then load the coverage chain.
	sets, debris, err := listSets(l.fs, l.dir)
	if err != nil {
		return info, fmt.Errorf("wal: listing segments: %w", err)
	}
	for _, name := range debris {
		_ = l.fs.Remove(filepath.Join(l.dir, segmentsDir, name))
	}
	chain, stale, orphan := chainSets(sets)
	if orphan != nil {
		return info, fmt.Errorf("wal: segment coverage gap before ep%d-%d (data dir damaged?)", orphan.lo, orphan.hi)
	}
	for _, s := range stale {
		_ = removeSet(l.fs, l.dir, s)
	}
	var infoMu sync.Mutex // readSetParallel applies concurrently
	for _, s := range chain {
		if err := readSetParallel(l.fs, l.dir, s, func(c *Commit) error {
			infoMu.Lock()
			info.Commits++
			if c.Epoch > info.Epoch {
				info.Epoch = c.Epoch
			}
			infoMu.Unlock()
			return apply(c)
		}); err != nil {
			return info, err
		}
		l.segCovered = s.hi
	}
	if l.segCovered > info.Epoch {
		info.Epoch = l.segCovered
	}
	l.sets = chain
	info.SegmentSets = len(chain)

	// WAL files in base order; replay records above the segment cover.
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return info, fmt.Errorf("wal: %w", err)
	}
	var files []walFile
	for _, name := range names {
		if base, ok := parseWalName(name); ok {
			files = append(files, walFile{name: name, base: base})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].base < files[j].base })

	truncated := false
	for i, wf := range files {
		if truncated {
			// Everything after the first torn record is dropped: record
			// order is the commit order, so nothing beyond the tear can be
			// applied safely.
			if sz, err := l.fs.Size(filepath.Join(l.dir, wf.name)); err == nil {
				info.DroppedBytes += sz
			}
			_ = l.fs.Remove(filepath.Join(l.dir, wf.name))
			continue
		}
		path := filepath.Join(l.dir, wf.name)
		f, err := l.fs.OpenFile(path, os.O_RDONLY)
		if err != nil {
			return info, fmt.Errorf("wal: %w", err)
		}
		r := NewReader(f)
		var readErr error
		for {
			c, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
			if c.Epoch <= l.segCovered {
				continue // already durable in a segment
			}
			info.WALRecords++
			info.Commits++
			if c.Epoch > info.Epoch {
				info.Epoch = c.Epoch
			}
			if err := apply(c); err != nil {
				f.Close()
				return info, err
			}
			l.pending = append(l.pending, c)
		}
		f.Close()
		if readErr != nil {
			if info.Clean {
				// A cleanly shut down log has no business containing a torn
				// record: surface the corruption instead of truncating.
				return info, fmt.Errorf("wal: %s corrupt after clean shutdown: %w", wf.name, readErr)
			}
			sz, _ := l.fs.Size(path)
			info.DroppedBytes += sz - r.Offset()
			if err := l.fs.Truncate(path, r.Offset()); err != nil {
				return info, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			truncated = true
			files = files[:i+1]
		}
	}

	l.files = files
	l.lastEpoch = info.Epoch

	// Resume appending: continue the newest file, or start wal-<epoch>
	// on a fresh (or fully rotated) directory.
	if len(l.files) == 0 {
		l.files = []walFile{{name: walName(l.lastEpoch), base: l.lastEpoch}}
	}
	active := l.files[len(l.files)-1]
	f, err := l.fs.OpenFile(filepath.Join(l.dir, active.name), os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return info, fmt.Errorf("wal: %w", err)
	}
	l.file = f
	l.fileName = active.name

	l.recovery = info
	l.replayed = true

	if l.cfg.Fsync.Mode == FsyncBatched {
		l.loops.Add(1)
		go l.syncLoop()
	}
	if l.cfg.SegmentInterval > 0 {
		l.loops.Add(1)
		go l.segmentLoop()
	}
	return info, nil
}

// Recovery returns the info from this process's Replay.
func (l *Log) Recovery() RecoveryInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovery
}

// SetLowWater installs the oldest-pinned-epoch source (the cursor
// registry) gating compaction: only segment sets wholly below the low
// water merge or expire.
func (l *Log) SetLowWater(fn func() (uint64, bool)) {
	l.lowWater.Store(&fn)
}

// Degraded reports whether the log hit a disk fault and the reason.
// Once degraded, the log stays degraded: appends fail fast and the
// owner must treat the store as read-only.
func (l *Log) Degraded() (string, bool) {
	if r := l.degradedReason.Load(); r != nil {
		return *r, true
	}
	return "", false
}

func (l *Log) degrade(op string, err error) error {
	reason := fmt.Sprintf("%s: %v", op, err)
	// First fault wins; later ones are consequences.
	l.degradedReason.CompareAndSwap(nil, &reason)
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}

// Append encodes the commit as one framed record and writes it in a
// single Write call (so a crash tears at most this record). The commit
// epoch must exceed every previously appended epoch — the caller's
// ingest lock provides that order. The returned Ack, when non-nil,
// must be invoked to wait for the record's durability (fsync-always
// group commit); invoke it after releasing caller-side locks.
func (l *Log) Append(c *Commit) (Ack, error) {
	if r := l.degradedReason.Load(); r != nil {
		return nil, fmt.Errorf("%w: %s", ErrDegraded, *r)
	}
	l.mu.Lock()
	if !l.replayed || l.closed {
		l.mu.Unlock()
		return nil, errors.New("wal: append on a log that is not open (Replay first)")
	}
	if c.Epoch <= l.lastEpoch {
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: epoch %d not after last appended %d", c.Epoch, l.lastEpoch)
	}
	appendStart := time.Now()
	l.encBuf = AppendRecord(l.encBuf[:0], c)
	if _, err := l.file.Write(l.encBuf); err != nil {
		// The record may be partially on disk; recovery's CRC framing
		// drops the torn tail. In memory nothing happened yet: the caller
		// aborts the commit, so no partial state is ever visible.
		derr := l.degrade("append", err)
		l.mu.Unlock()
		return nil, derr
	}
	l.lastEpoch = c.Epoch
	l.pending = append(l.pending, c)
	seq := l.appendSeq.Add(1)
	l.records.Add(1)
	// Observed inside mu so it times exactly the encode+write this
	// append did; the observation itself is atomic and never blocks.
	l.cfg.Metrics.ObserveWALAppend(appendStart)
	l.mu.Unlock()

	if l.cfg.Fsync.Mode != FsyncAlways {
		return nil, nil
	}
	return func() error { return l.ensureSynced(seq) }, nil
}

// ensureSynced makes every record up to seq durable, sharing one fsync
// among all waiters queued behind it (group commit).
func (l *Log) ensureSynced(seq uint64) error {
	if l.syncedSeq.Load() >= seq {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedSeq.Load() >= seq {
		return nil // a concurrent leader synced past us while we queued
	}
	l.mu.Lock()
	f := l.file
	target := l.appendSeq.Load()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return errors.New("wal: closed")
	}
	syncStart := time.Now()
	if err := f.Sync(); err != nil {
		return l.degrade("fsync", err)
	}
	l.cfg.Metrics.ObserveWALFsync(syncStart)
	l.syncs.Add(1)
	// Records appended after target started during/after the sync; they
	// wait for the next one.
	if l.syncedSeq.Load() < target {
		l.syncedSeq.Store(target)
	}
	return nil
}

// syncLoop is the batched-mode background syncer.
func (l *Log) syncLoop() {
	defer l.loops.Done()
	t := time.NewTicker(l.cfg.Fsync.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if l.appendSeq.Load() > l.syncedSeq.Load() {
				if err := l.ensureSynced(l.appendSeq.Load()); err != nil {
					return // degraded; nothing more to sync
				}
			}
		}
	}
}

// segmentLoop periodically flushes pending commits into segment sets
// and compacts old ones.
func (l *Log) segmentLoop() {
	defer l.loops.Done()
	t := time.NewTicker(l.cfg.SegmentInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if err := l.FlushSegments(); err != nil {
				return // degraded
			}
		}
	}
}

// FlushSegments writes the pending commits (if any) into a new segment
// set, rotates the WAL so the covered prefix can be reclaimed, and
// runs compaction. Called by the segment loop; exported so shutdown
// and tests can force a flush.
func (l *Log) FlushSegments() error {
	if r := l.degradedReason.Load(); r != nil {
		return fmt.Errorf("%w: %s", ErrDegraded, *r)
	}
	l.mu.Lock()
	if len(l.pending) == 0 || !l.replayed || l.closed {
		l.mu.Unlock()
		return l.compact()
	}
	// Rotate first: sync and retire the active file, then take the
	// pending deltas. New appends land in the fresh file with epochs
	// above everything this flush covers, so once the set is durable,
	// every older WAL file is redundant.
	if err := l.file.Sync(); err != nil {
		derr := l.degrade("rotate fsync", err)
		l.mu.Unlock()
		return derr
	}
	l.syncs.Add(1)
	if l.syncedSeq.Load() < l.appendSeq.Load() {
		l.syncedSeq.Store(l.appendSeq.Load())
	}
	if err := l.file.Close(); err != nil {
		derr := l.degrade("rotate close", err)
		l.mu.Unlock()
		return derr
	}
	next := walFile{name: walName(l.lastEpoch), base: l.lastEpoch}
	f, err := l.fs.OpenFile(filepath.Join(l.dir, next.name), os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err != nil {
		derr := l.degrade("rotate open", err)
		l.mu.Unlock()
		return derr
	}
	l.file = f
	l.fileName = next.name
	l.files = append(l.files, next)
	deltas := l.pending
	l.pending = nil
	lo, hi := l.segCovered, deltas[len(deltas)-1].Epoch
	l.mu.Unlock()

	set, err := writeSet(l.fs, l.dir, lo, hi, deltas, l.cfg.Shards)
	if err != nil {
		// The set never got its marker, so recovery ignores it; the data
		// still lives in the retired WAL files, which we now must not
		// delete. Restore the deltas and go read-only.
		l.mu.Lock()
		l.pending = append(deltas, l.pending...)
		l.mu.Unlock()
		return l.degrade("segment write", err)
	}
	l.segmentFlushes.Add(1)

	l.mu.Lock()
	l.segCovered = hi
	l.sets = append(l.sets, set)
	// Reclaim WAL files whose whole range is now in segments: file i
	// covers (base_i, base_{i+1}], so every non-active file with a
	// successor base <= hi is redundant.
	kept := l.files[:0]
	for i, wf := range l.files {
		if i+1 < len(l.files) && l.files[i+1].base <= hi {
			_ = l.fs.Remove(filepath.Join(l.dir, wf.name))
			continue
		}
		kept = append(kept, wf)
	}
	l.files = kept
	l.mu.Unlock()
	return l.compact()
}

// compact merges segment sets wholly below the oldest pinned epoch
// (snapshot.Registry.LowWater via SetLowWater; with nothing pinned,
// everything flushed is eligible) into one set, applying the retention
// cutoff so old audit events age out. Needs at least two eligible sets
// or a retention window to do anything.
func (l *Log) compact() error {
	l.mu.Lock()
	limit := l.segCovered + 1 // exclusive upper bound on compactable epochs
	if fnp := l.lowWater.Load(); fnp != nil {
		if low, ok := (*fnp)(); ok && low < limit {
			limit = low
		}
	}
	var eligible []segSet
	for _, s := range l.sets {
		if s.hi < limit {
			eligible = append(eligible, s)
		} else {
			break // sets are contiguous ascending; later ones reach higher
		}
	}
	cutoff := retentionCutoff(l.cfg.Retention, l.now)
	// A single-set merge would rewrite the set under its own filenames
	// and then delete them, so compaction always waits for two.
	if len(eligible) < 2 {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	merged, err := mergeSets(l.fs, l.dir, eligible, l.cfg.Shards, cutoff)
	if err != nil {
		return l.degrade("compaction", err)
	}
	l.compactions.Add(1)
	l.mu.Lock()
	// Rebuild the inventory by identity: a concurrent flush may have
	// appended a new set while the merge ran.
	kept := []segSet{merged}
	for _, s := range l.sets {
		merged0 := false
		for _, e := range eligible {
			if s.lo == e.lo && s.hi == e.hi {
				merged0 = true
				break
			}
		}
		if !merged0 {
			kept = append(kept, s)
		}
	}
	sortSets(kept)
	l.sets = kept
	l.mu.Unlock()
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	sets := len(l.sets)
	pend := len(l.pending)
	l.mu.Unlock()
	st := Stats{
		Records:        l.records.Load(),
		Syncs:          l.syncs.Load(),
		SegmentSets:    sets,
		SegmentFlushes: l.segmentFlushes.Load(),
		Compactions:    l.compactions.Load(),
		PendingCommits: pend,
	}
	if reason, ok := l.Degraded(); ok {
		st.DegradedReason = reason
	}
	return st
}

// Close stops the background loops, flushes and fsyncs the WAL tail,
// and writes the clean-shutdown marker so the next start skips torn-
// tail handling. A degraded log closes without claiming cleanliness.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.loops.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.replayed {
		l.closed = true
		return nil
	}
	l.closed = true
	if _, bad := l.Degraded(); bad {
		if l.file != nil {
			l.file.Close()
		}
		return fmt.Errorf("%w: closed while degraded; no clean marker written", ErrDegraded)
	}
	if err := l.file.Sync(); err != nil {
		l.file.Close()
		return l.degrade("close fsync", err)
	}
	l.syncs.Add(1)
	if err := l.file.Close(); err != nil {
		return l.degrade("close", err)
	}
	f, err := l.fs.OpenFile(filepath.Join(l.dir, cleanMarker), os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		return fmt.Errorf("wal: clean marker: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", l.lastEpoch); err != nil {
		f.Close()
		return fmt.Errorf("wal: clean marker: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: clean marker: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: clean marker: %w", err)
	}
	return l.fs.SyncDir(l.dir)
}

// ActiveFile returns the path of the WAL file currently receiving
// appends (crash tests truncate copies of it).
func (l *Log) ActiveFile() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return filepath.Join(l.dir, l.fileName)
}
