package wal

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the streaming record
// reader: corrupt, truncated, or bit-flipped input must never panic and
// must never yield a commit whose frame the CRC did not validate.
func FuzzWALDecode(f *testing.F) {
	// Seed with real records, a torn tail, and a bit-flipped body.
	good := AppendRecord(nil, testCommit(1, 2, 3))
	good = AppendRecord(good, testCommit(2, 0, 1))
	f.Add(good)
	f.Add(good[:len(good)-3])
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // implausible length

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			c, err := r.Next()
			if err == io.EOF || err != nil {
				break
			}
			// Every decoded commit must re-encode to a frame whose payload
			// CRC-validates — i.e. decoding is only possible for records the
			// checksum accepted.
			if c == nil {
				t.Fatal("nil commit with nil error")
			}
		}
		if off := r.Offset(); off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d out of range for %d input bytes", r.Offset(), len(data))
		}
	})
}

// FuzzDecodeCommit hits the payload decoder directly (no framing), the
// surface a flipped bit inside a CRC-colliding payload would reach.
func FuzzDecodeCommit(f *testing.F) {
	rec := AppendRecord(nil, testCommit(3, 1, 2))
	f.Add(rec[frameHeaderLen:])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		c, err := DecodeCommit(payload)
		if err == nil && c == nil {
			t.Fatal("nil commit with nil error")
		}
		if err == nil {
			// A successful decode must survive re-encode + re-decode with the
			// same meaning. (Byte equality is too strong: varints accept
			// non-minimal encodings.)
			re := appendCommitPayload(nil, c)
			c2, err2 := DecodeCommit(re)
			if err2 != nil {
				t.Fatalf("re-decode of re-encoded commit failed: %v", err2)
			}
			if !sameCommit(c, c2) {
				t.Fatal("decode/encode/decode changed the commit")
			}
		}
	})
}
