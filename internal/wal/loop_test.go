package wal

import (
	"os"
	"testing"
	"time"
)

// The segment loop flushes pending commits into a segment set on its
// own timer, without an explicit FlushSegments call.
func TestSegmentLoopFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{
		Fsync:           Policy{Mode: FsyncNever},
		SegmentInterval: 10 * time.Millisecond,
	})
	defer l.Close()
	if _, err := l.Append(testCommit(1, 2, 5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().SegmentSets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("segment loop never flushed the pending commit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := l.Stats(); st.PendingCommits != 0 || st.SegmentFlushes < 1 {
		t.Fatalf("after loop flush: %+v", st)
	}
}

func TestPolicyString(t *testing.T) {
	for s, p := range map[string]Policy{
		"always": {Mode: FsyncAlways},
		"never":  {Mode: FsyncNever},
		"250ms":  {Mode: FsyncBatched, Interval: 250 * time.Millisecond},
	} {
		if got := p.String(); got != s {
			t.Errorf("Policy%+v.String() = %q, want %q", p, got, s)
		}
		// String output round-trips through ParsePolicy.
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %+v, %v, want %+v", s, back, err, p)
		}
	}
}

func TestLogAccessors(t *testing.T) {
	dir := t.TempDir()
	l, _, info := openReplay(t, dir, Config{Fsync: Policy{Mode: FsyncNever}})
	defer l.Close()
	if l.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", l.Dir(), dir)
	}
	if l.Recovery() != info {
		t.Errorf("Recovery() = %+v, want the replay's %+v", l.Recovery(), info)
	}
}

// FaultFS passes reads and file maintenance through to the inner FS
// untouched — only writes and syncs are fault points.
func TestFaultFSPassthrough(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	name := dir + "/f"
	f, err := ffs.OpenFile(name, os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n := ffs.Writes(); n != 1 {
		t.Fatalf("Writes() = %d, want 1", n)
	}
	r, err := ffs.OpenFile(name, os.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, _ := r.Read(buf); string(buf[:n]) != "hello" {
		t.Fatalf("read back %q", buf[:n])
	}
	r.Close()
	if err := ffs.Truncate(name, 2); err != nil {
		t.Fatal(err)
	}
	if sz, err := ffs.Size(name); err != nil || sz != 2 {
		t.Fatalf("Size after truncate = %d, %v", sz, err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Remove(name); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.Size(name); err == nil {
		t.Fatal("removed file still has a size")
	}
}
