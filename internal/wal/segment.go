package wal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
)

// Segment snapshots are immutable, epoch-tagged files covering a
// contiguous epoch range (lo, hi]: one entities file holding every
// entity interned in the range, plus one events file per store shard
// holding that shard's events. A set is written from the already
// committed (immutable) deltas, so snapshotting never blocks ingest,
// and it only becomes visible to recovery once its ".ok" marker is
// durable — a crash mid-write leaves an incomplete set that the next
// recovery ignores and garbage collects. Once a set covers a WAL
// prefix, those WAL files rotate away; recovery loads segment sets in
// range order and then replays only the WAL tail.
//
// File layout inside the data dir:
//
//	segments/ep<lo>-<hi>.ents.seg   entities interned in (lo, hi]
//	segments/ep<lo>-<hi>.ev<k>.seg  shard k's events in (lo, hi]
//	segments/ep<lo>-<hi>.ok         completion marker (written last)
//
// Each file is a stream of framed commit records (the WAL codec), so
// replay shares one decode path with the log.

const segmentsDir = "segments"

// segSet is one on-disk segment set.
type segSet struct {
	lo, hi uint64
	// names of the set's data files (within segments/), entities first.
	files []string
	ok    bool
}

func segName(lo, hi uint64, suffix string) string {
	return fmt.Sprintf("ep%d-%d.%s", lo, hi, suffix)
}

// parseSegName splits "ep<lo>-<hi>.<suffix>" into its parts.
func parseSegName(name string) (lo, hi uint64, suffix string, ok bool) {
	var rest string
	if n, err := fmt.Sscanf(name, "ep%d-%d.%s", &lo, &hi, &rest); n != 3 || err != nil {
		return 0, 0, "", false
	}
	if hi <= lo {
		return 0, 0, "", false
	}
	return lo, hi, rest, true
}

// listSets scans the segments directory and returns the complete sets
// in ascending range order, plus the names of files belonging to
// incomplete sets (no ".ok" marker — crash debris for the caller to
// clean up).
func listSets(fsys FS, dir string) (sets []segSet, debris []string, err error) {
	names, err := fsys.ReadDir(filepath.Join(dir, segmentsDir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	type entry struct {
		files []string
		ok    bool
	}
	byRange := map[[2]uint64]*entry{}
	for _, name := range names {
		lo, hi, suffix, good := parseSegName(name)
		if !good {
			continue
		}
		e := byRange[[2]uint64{lo, hi}]
		if e == nil {
			e = &entry{}
			byRange[[2]uint64{lo, hi}] = e
		}
		if suffix == "ok" {
			e.ok = true
		} else {
			e.files = append(e.files, name)
		}
	}
	for r, e := range byRange {
		if !e.ok {
			debris = append(debris, e.files...)
			continue
		}
		// Entities sort before events lexically ("ents.seg" < "ev0.seg"),
		// and ReadDir is sorted, so e.files is already in apply order.
		sets = append(sets, segSet{lo: r[0], hi: r[1], files: e.files, ok: true})
	}
	sortSets(sets)
	return sets, debris, nil
}

func sortSets(sets []segSet) {
	for i := 1; i < len(sets); i++ {
		for j := i; j > 0 && less(sets[j], sets[j-1]); j-- {
			sets[j], sets[j-1] = sets[j-1], sets[j]
		}
	}
}

// less orders sets by lo ascending, then hi DESCENDING, so a merged
// superset sorts before the narrower sets it shadows and the coverage
// chain naturally prefers it.
func less(a, b segSet) bool {
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	return a.hi > b.hi
}

// chainSets walks the sorted sets, keeping the maximal contiguous
// coverage chain from epoch 0 and separating shadowed or stale sets
// (already covered by a merged superset) for deletion. A gap in
// coverage ends the chain: later sets cannot be applied without the
// missing range, so they are reported as orphans and recovery fails
// loudly rather than silently skipping data.
func chainSets(sets []segSet) (chain, stale []segSet, orphan *segSet) {
	covered := uint64(0)
	for i := range sets {
		s := sets[i]
		switch {
		case s.hi <= covered:
			stale = append(stale, s)
		case s.lo <= covered:
			// Contiguous (s.lo == covered) — overlap below covered cannot
			// happen for merge products, which always start at a previous
			// set boundary.
			chain = append(chain, s)
			covered = s.hi
		default:
			o := s
			return chain, stale, &o
		}
	}
	return chain, stale, nil
}

// writeSet writes one segment set covering (lo, hi] from the given
// commits, partitioning events across shards, and makes it durable
// (files synced, then the ".ok" marker, then the directory). Returns
// the set descriptor.
func writeSet(fsys FS, dir string, lo, hi uint64, commits []*Commit, shards int) (segSet, error) {
	segDir := filepath.Join(dir, segmentsDir)
	set := segSet{lo: lo, hi: hi, ok: true}

	writeFile := func(name string, records []byte) error {
		f, err := fsys.OpenFile(filepath.Join(segDir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
		if err != nil {
			return err
		}
		if _, err := f.Write(records); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	// Entities file: one record per commit that interned entities.
	var buf []byte
	for _, c := range commits {
		if len(c.Entities) == 0 {
			continue
		}
		buf = AppendRecord(buf, &Commit{Epoch: c.Epoch, Entities: c.Entities})
	}
	if len(buf) > 0 {
		name := segName(lo, hi, "ents.seg")
		if err := writeFile(name, buf); err != nil {
			return set, err
		}
		set.files = append(set.files, name)
	}

	// Per-shard events files.
	for k := 0; k < shards; k++ {
		buf = buf[:0]
		for _, c := range commits {
			var shardEvents []*audit.Event
			for _, ev := range c.Events {
				if audit.ShardIndex(ev.Host, shards) == k {
					shardEvents = append(shardEvents, ev)
				}
			}
			if len(shardEvents) == 0 {
				continue
			}
			buf = AppendRecord(buf, &Commit{Epoch: c.Epoch, Events: shardEvents})
		}
		if len(buf) == 0 {
			continue
		}
		name := segName(lo, hi, fmt.Sprintf("ev%d.seg", k))
		if err := writeFile(name, buf); err != nil {
			return set, err
		}
		set.files = append(set.files, name)
	}

	// The marker commits the set; write it only after every data file is
	// durable, and sync the directory so the names are too.
	if err := writeFile(segName(lo, hi, "ok"), nil); err != nil {
		return set, err
	}
	if err := fsys.SyncDir(segDir); err != nil {
		return set, err
	}
	return set, nil
}

// readSet streams a complete set's commits to apply, entities file
// first, one file at a time. apply is never called concurrently; this
// is the path for callers with order- or concurrency-sensitive apply
// functions (mergeSets accumulates into a shared slice). Segment files
// were fully synced before their marker, so any decode failure is real
// corruption and aborts recovery.
func readSet(fsys FS, dir string, s segSet, apply func(*Commit) error) error {
	for _, name := range s.files {
		if err := readSegFile(fsys, dir, name, apply); err != nil {
			return err
		}
	}
	return nil
}

// readSetParallel streams a complete set's commits to apply: the
// entities file first (sequentially — events reference interned
// entities, and entity IDs must restore in order), then the per-shard
// events files concurrently. Within one events file commits apply in
// epoch order, so when WAL shards match store shards each store shard
// still sees its rows in commit order; across shards apply runs
// concurrently, so it must be safe for concurrent calls carrying
// events of different shards. This is the restart-recovery path, where
// per-shard loading was the remaining sequential bottleneck.
func readSetParallel(fsys FS, dir string, s segSet, apply func(*Commit) error) error {
	var evFiles []string
	for _, name := range s.files {
		if strings.HasSuffix(name, ".ents.seg") {
			if err := readSegFile(fsys, dir, name, apply); err != nil {
				return err
			}
		} else {
			evFiles = append(evFiles, name)
		}
	}
	if len(evFiles) == 1 {
		return readSegFile(fsys, dir, evFiles[0], apply)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(evFiles))
	for _, name := range evFiles {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := readSegFile(fsys, dir, name, apply); err != nil {
				errCh <- err
			}
		}(name)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// readSegFile streams one segment file's commits to apply.
func readSegFile(fsys FS, dir, name string, apply func(*Commit) error) error {
	path := filepath.Join(dir, segmentsDir, name)
	f, err := fsys.OpenFile(path, os.O_RDONLY)
	if err != nil {
		return fmt.Errorf("wal: segment %s: %w", name, err)
	}
	r := NewReader(f)
	for {
		c, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if err := apply(c); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// removeSet deletes a set, marker first: a crash mid-delete leaves an
// incomplete set that the next recovery sweeps as debris.
func removeSet(fsys FS, dir string, s segSet) error {
	segDir := filepath.Join(dir, segmentsDir)
	if err := fsys.Remove(filepath.Join(segDir, segName(s.lo, s.hi, "ok"))); err != nil {
		return err
	}
	for _, name := range s.files {
		if err := fsys.Remove(filepath.Join(segDir, name)); err != nil {
			return err
		}
	}
	return nil
}

// mergeSets compacts eligible sets into one covering their union,
// applying the retention cutoff: events whose EndTime is older than
// cutoff (0 = keep everything) are dropped, which is how old audit
// evidence ages out of the store — the merged segment is what a restart
// loads, so the in-memory footprint is bounded across restarts too.
// Entities are always retained; they are small and later events may
// reference them.
func mergeSets(fsys FS, dir string, sets []segSet, shards int, cutoff int64) (segSet, error) {
	var commits []*Commit
	for _, s := range sets {
		if err := readSet(fsys, dir, s, func(c *Commit) error {
			if cutoff > 0 && len(c.Events) > 0 {
				kept := c.Events[:0]
				for _, ev := range c.Events {
					if ev.EndTime >= cutoff {
						kept = append(kept, ev)
					}
				}
				c.Events = kept
			}
			if len(c.Entities) > 0 || len(c.Events) > 0 {
				commits = append(commits, c)
			}
			return nil
		}); err != nil {
			return segSet{}, err
		}
	}
	lo, hi := sets[0].lo, sets[len(sets)-1].hi
	merged, err := writeSet(fsys, dir, lo, hi, commits, shards)
	if err != nil {
		return segSet{}, err
	}
	for _, s := range sets {
		if err := removeSet(fsys, dir, s); err != nil {
			return segSet{}, err
		}
	}
	return merged, nil
}

// retentionCutoff converts a retention window into an EndTime cutoff in
// unix nanoseconds (0 = no cutoff).
func retentionCutoff(retention time.Duration, now func() time.Time) int64 {
	if retention <= 0 {
		return 0
	}
	return now().Add(-retention).UnixNano()
}
