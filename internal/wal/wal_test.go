package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
)

func testCommit(epoch uint64, nEnts, nEvts int) *Commit {
	c := &Commit{Epoch: epoch}
	for i := 0; i < nEnts; i++ {
		c.Entities = append(c.Entities, &audit.Entity{
			ID:   int64(epoch)*1000 + int64(i),
			Type: audit.EntityProcess,
			Host: fmt.Sprintf("host%d", i%4),
			Path: fmt.Sprintf("/bin/tool-%d-%d", epoch, i),
			PID:  100 + i,
		})
	}
	for i := 0; i < nEvts; i++ {
		c.Events = append(c.Events, &audit.Event{
			ID:        int64(epoch)*1000 + int64(i),
			SrcID:     int64(i),
			DstID:     int64(i + 1),
			Op:        audit.OpRead,
			StartTime: int64(epoch * 10),
			EndTime:   int64(epoch*10 + 5),
			Amount:    int64(i),
			Host:      fmt.Sprintf("host%d", i%4),
		})
	}
	return c
}

func sameCommit(a, b *Commit) bool {
	if a.Epoch != b.Epoch || len(a.Entities) != len(b.Entities) || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Entities {
		if *a.Entities[i] != *b.Entities[i] {
			return false
		}
	}
	for i := range a.Events {
		if *a.Events[i] != *b.Events[i] {
			return false
		}
	}
	return true
}

func openReplay(t *testing.T, dir string, cfg Config) (*Log, []*Commit, RecoveryInfo) {
	t.Helper()
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Segment replay invokes the callback from per-shard goroutines
	// (readSetParallel), so the accumulator needs a lock.
	var mu sync.Mutex
	var got []*Commit
	info, err := l.Replay(func(c *Commit) error {
		mu.Lock()
		got = append(got, c)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return l, got, info
}

func TestCodecRoundTrip(t *testing.T) {
	want := testCommit(7, 3, 5)
	rec := AppendRecord(nil, want)
	got, err := DecodeCommit(rec[frameHeaderLen:])
	if err != nil {
		t.Fatalf("DecodeCommit: %v", err)
	}
	if !sameCommit(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, got, info := openReplay(t, dir, Config{Fsync: Policy{Mode: FsyncAlways}, Shards: 2})
	if info.Epoch != 0 || info.Commits != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	var want []*Commit
	for e := uint64(1); e <= 5; e++ {
		c := testCommit(e, 2, 3)
		want = append(want, c)
		ack, err := l.Append(c)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := ack(); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got, info := openReplay(t, dir, Config{Shards: 2})
	defer l2.Close()
	if !info.Clean {
		t.Fatalf("expected clean-shutdown marker, got %+v", info)
	}
	if info.Epoch != 5 || info.Commits != 5 || info.DroppedBytes != 0 {
		t.Fatalf("recovery info %+v", info)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d commits, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameCommit(want[i], got[i]) {
			t.Fatalf("commit %d mismatch", i)
		}
	}
}

func TestCleanMarkerRemovedOnReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{})
	ack, err := l.Append(testCommit(1, 1, 1))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	_ = ack
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, _, info := openReplay(t, dir, Config{})
	if !info.Clean {
		t.Fatal("first restart should see the clean marker")
	}
	// The marker must be gone now: a crash from here is not clean.
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); !os.IsNotExist(err) {
		t.Fatalf("clean marker survived replay: %v", err)
	}
	l2.Close()
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{Fsync: Policy{Mode: FsyncNever}})
	for e := uint64(1); e <= 3; e++ {
		if _, err := l.Append(testCommit(e, 1, 2)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	active := l.ActiveFile()
	// Simulate kill -9: no Close, tear the last record mid-frame.
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(active, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, got, info := openReplay(t, dir, Config{})
	defer l2.Close()
	if info.Clean {
		t.Fatal("torn restart must not be clean")
	}
	if info.Epoch != 2 || len(got) != 2 {
		t.Fatalf("want epochs 1-2 recovered, got %+v (%d commits)", info, len(got))
	}
	if info.DroppedBytes == 0 {
		t.Fatal("expected dropped tail bytes reported")
	}
	// The log must keep accepting appends after recovery.
	if _, err := l2.Append(testCommit(3, 1, 1)); err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
}

func TestCorruptionAfterCleanShutdownIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{})
	if _, err := l.Append(testCommit(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Bit-flip inside the (cleanly synced) WAL file.
	name := filepath.Join(dir, walName(0))
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(name, b, 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Replay(func(*Commit) error { return nil }); err == nil {
		t.Fatal("corruption after clean shutdown should be a hard error, not silent truncation")
	}
}

func TestSegmentFlushAndRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{Shards: 2})
	var want []*Commit
	for e := uint64(1); e <= 4; e++ {
		c := testCommit(e, 2, 4)
		want = append(want, c)
		if _, err := l.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.FlushSegments(); err != nil {
		t.Fatalf("FlushSegments: %v", err)
	}
	st := l.Stats()
	if st.SegmentSets != 1 || st.PendingCommits != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	// More appends land in the rotated file.
	for e := uint64(5); e <= 6; e++ {
		c := testCommit(e, 1, 2)
		want = append(want, c)
		if _, err := l.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, info := openReplay(t, dir, Config{Shards: 2})
	defer l2.Close()
	if info.SegmentSets != 1 || info.Epoch != 6 {
		t.Fatalf("recovery info %+v", info)
	}
	// Segment replay splits commits into entity/event records, so compare
	// totals rather than per-commit shape.
	var wantEnts, wantEvts, gotEnts, gotEvts int
	top := uint64(0)
	for _, c := range want {
		wantEnts += len(c.Entities)
		wantEvts += len(c.Events)
	}
	for _, c := range got {
		gotEnts += len(c.Entities)
		gotEvts += len(c.Events)
		if c.Epoch > top {
			top = c.Epoch
		}
	}
	if wantEnts != gotEnts || wantEvts != gotEvts || top != 6 {
		t.Fatalf("want %d/%d ents/evts top 6, got %d/%d top %d", wantEnts, wantEvts, gotEnts, gotEvts, top)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	l, _, _ := openReplay(t, dir, Config{Shards: 1, Retention: time.Hour, Now: func() time.Time { return now }})
	old := now.Add(-2 * time.Hour).UnixNano()
	fresh := now.UnixNano()
	mk := func(epoch uint64, end int64) *Commit {
		c := testCommit(epoch, 1, 1)
		c.Events[0].EndTime = end
		return c
	}
	// Two flushes → two sets; nothing pinned, so compaction merges them
	// and ages out the stale event.
	if _, err := l.Append(mk(1, old)); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushSegments(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mk(2, fresh)); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushSegments(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Compactions != 1 || st.SegmentSets != 1 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, _ := openReplay(t, dir, Config{Shards: 1})
	defer l2.Close()
	var evts []*audit.Event
	for _, c := range got {
		evts = append(evts, c.Events...)
	}
	if len(evts) != 1 || evts[0].EndTime != fresh {
		t.Fatalf("retention should have dropped the old event, kept the fresh one; got %d events", len(evts))
	}
}

func TestCompactionRespectsLowWater(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{Shards: 1})
	defer l.Close()
	low := uint64(1) // a cursor pinned at epoch 1
	l.SetLowWater(func() (uint64, bool) { return low, true })
	for e := uint64(1); e <= 2; e++ {
		if _, err := l.Append(testCommit(e, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if err := l.FlushSegments(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Compactions != 0 || st.SegmentSets != 2 {
		t.Fatalf("pinned epoch should block compaction: %+v", st)
	}
	low = 100 // cursor released, low water past everything
	if err := l.FlushSegments(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Compactions != 1 || st.SegmentSets != 1 {
		t.Fatalf("compaction should run once unpinned: %+v", st)
	}
}

func TestWriteFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, _, _ := openReplay(t, dir, Config{FS: ffs, Fsync: Policy{Mode: FsyncNever}})
	if _, err := l.Append(testCommit(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ffs.FailWritesAfter(0, true) // next write tears
	_, err := l.Append(testCommit(2, 1, 1))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	if reason, ok := l.Degraded(); !ok || reason == "" {
		t.Fatal("log should report degraded with a reason")
	}
	// Degraded is sticky: later appends fail fast even with faults off.
	ffs.FailWritesAfter(-1, false)
	if _, err := l.Append(testCommit(3, 1, 1)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded must be sticky, got %v", err)
	}
	if err := l.FlushSegments(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("flush on degraded log: %v", err)
	}
	// Close must not write a clean marker.
	if err := l.Close(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Close on degraded log: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); !os.IsNotExist(err) {
		t.Fatal("degraded close must not claim cleanliness")
	}

	// The torn record is dropped on recovery; epoch 1 survives.
	l2, got, info := openReplay(t, dir, Config{})
	defer l2.Close()
	if info.Epoch != 1 || len(got) != 1 {
		t.Fatalf("want epoch 1 recovered, got %+v", info)
	}
}

func TestSyncFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, _, _ := openReplay(t, dir, Config{FS: ffs, Fsync: Policy{Mode: FsyncAlways}})
	ffs.FailSyncs(true)
	ack, err := l.Append(testCommit(1, 1, 1))
	if err != nil {
		t.Fatalf("Append should succeed (the write itself is fine): %v", err)
	}
	if err := ack(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ack must surface the fsync fault as ErrDegraded, got %v", err)
	}
	if _, err := l.Append(testCommit(2, 1, 1)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("appends after sync fault: %v", err)
	}
}

func TestSegmentWriteFaultKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, _, _ := openReplay(t, dir, Config{FS: ffs, Shards: 1})
	for e := uint64(1); e <= 3; e++ {
		if _, err := l.Append(testCommit(e, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the rotation write succeed but fail the segment data write.
	ffs.FailWritesAfter(0, false)
	if err := l.FlushSegments(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("segment write fault should degrade: %v", err)
	}
	ffs.FailWritesAfter(-1, false)

	// No clean close possible; recover from the directory as-is. All
	// three commits must come back from the WAL (no segment covered them).
	l2, got, info := openReplay(t, dir, Config{Shards: 1})
	defer l2.Close()
	if info.Epoch != 3 || len(got) != 3 {
		t.Fatalf("want all 3 commits recovered from WAL, got %+v (%d)", info, len(got))
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplay(t, dir, Config{Fsync: Policy{Mode: FsyncAlways}})
	const n = 32
	var mu sync.Mutex
	next := uint64(1)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			e := next
			next++
			ack, err := l.Append(testCommit(e, 1, 1))
			mu.Unlock()
			if err != nil {
				errs <- err
				return
			}
			errs <- ack()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent append/ack: %v", err)
		}
	}
	st := l.Stats()
	if st.Records != n {
		t.Fatalf("want %d records, got %d", n, st.Records)
	}
	// Group commit: with 32 concurrent acks, syncs should be well under
	// one per record (leader-shared). Allow slack for scheduling.
	if st.Syncs >= n {
		t.Fatalf("group commit ineffective: %d syncs for %d records", st.Syncs, st.Records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got, _ := openReplay(t, dir, Config{})
	defer l2.Close()
	if len(got) != n {
		t.Fatalf("recovered %d of %d commits", len(got), n)
	}
}

// TestKillAtRandomOffset is the crash-recovery property test at the log
// layer: truncating the WAL at any byte recovers exactly a prefix of the
// appended commits, never a partial or reordered one.
func TestKillAtRandomOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := t.TempDir()
	for trial := 0; trial < 20; trial++ {
		dir := filepath.Join(base, fmt.Sprintf("trial%d", trial))
		l, _, _ := openReplay(t, dir, Config{Fsync: Policy{Mode: FsyncNever}})
		var want []*Commit
		for e := uint64(1); e <= 8; e++ {
			c := testCommit(e, rng.Intn(3), 1+rng.Intn(4))
			want = append(want, c)
			if _, err := l.Append(c); err != nil {
				t.Fatal(err)
			}
		}
		active := l.ActiveFile()
		st, err := os.Stat(active)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Int63n(st.Size() + 1)
		if err := os.Truncate(active, cut); err != nil {
			t.Fatal(err)
		}
		// No Close: this models kill -9.

		l2, got, info := openReplay(t, dir, Config{})
		if info.Clean {
			t.Fatal("killed process cannot be clean")
		}
		if len(got) > len(want) {
			t.Fatalf("trial %d: recovered more commits than written", trial)
		}
		for i := range got {
			if !sameCommit(want[i], got[i]) {
				t.Fatalf("trial %d: commit %d not an exact prefix match", trial, i)
			}
		}
		// Epochs are 1..8 here, so the recovered epoch is the prefix length.
		if info.Epoch != uint64(len(got)) {
			t.Fatalf("trial %d: epoch %d vs %d recovered commits", trial, info.Epoch, len(got))
		}
		l2.Close()
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode FsyncMode
		err  bool
	}{
		{"always", FsyncAlways, false},
		{"never", FsyncNever, false},
		{"100ms", FsyncBatched, false},
		{"2s", FsyncBatched, false},
		{"0", 0, true},
		{"-5ms", 0, true},
		{"sometimes", 0, true},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if c.err != (err != nil) {
			t.Fatalf("ParsePolicy(%q) err=%v", c.in, err)
		}
		if err == nil && p.Mode != c.mode {
			t.Fatalf("ParsePolicy(%q) mode=%v want %v", c.in, p.Mode, c.mode)
		}
	}
}

func TestReplayTwiceRejected(t *testing.T) {
	l, _, _ := openReplay(t, t.TempDir(), Config{})
	defer l.Close()
	if _, err := l.Replay(func(*Commit) error { return nil }); err == nil {
		t.Fatal("second Replay must fail")
	}
}

func TestAppendBeforeReplayRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testCommit(1, 1, 1)); err == nil {
		t.Fatal("Append before Replay must fail")
	}
}
