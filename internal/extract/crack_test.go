package extract

import "testing"

// TestExtractPasswordCrackReport locks in the extraction shape for the
// paper's first demo attack description.
func TestExtractPasswordCrackReport(t *testing.T) {
	g := Extract(PasswordCrackText)
	wantEdges := []struct{ src, verb, dst string }{
		{"/usr/bin/wget", "connect", "162.125.248.18"},
		{"/usr/bin/wget", "write", "/tmp/logo.jpg"},
		{"/usr/bin/exiftool", "read", "/tmp/logo.jpg"},
		{"/usr/bin/wget", "connect", "192.168.29.128"},
		{"/usr/bin/wget", "write", "/tmp/cracker"},
		{"/tmp/cracker", "read", "/etc/shadow"},
		{"/tmp/cracker", "write", "/tmp/passwords.txt"},
		{"/tmp/cracker", "connect", "192.168.29.128"},
	}
	got := edgeSet(g)
	for _, w := range wantEdges {
		if _, ok := got[[3]string{w.src, w.verb, w.dst}]; !ok {
			t.Errorf("missing edge %s -%s-> %s", w.src, w.verb, w.dst)
		}
	}
	if t.Failed() {
		t.Logf("graph:\n%s", g.String())
	}
	// /tmp/cracker appears both as a written file and as an acting
	// process; it must be a single merged node.
	count := 0
	for _, n := range g.Nodes {
		if n.Text == "/tmp/cracker" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("/tmp/cracker should be one node, got %d", count)
	}
}
