package extract

import (
	"strings"

	"repro/internal/ioc"
	"repro/internal/nlp"
)

// relationVerbs is the lexicon of candidate IOC relation verbs (lemmas).
// During tree annotation, verb tokens whose lemma appears here are marked
// as candidate relation verbs; the closest candidate to the object IOC on
// the dependency path becomes the relation verb of the extracted triplet.
var relationVerbs = map[string]bool{
	"read": true, "write": true, "download": true, "upload": true,
	"execute": true, "run": true, "launch": true, "open": true,
	"connect": true, "send": true, "receive": true, "transfer": true,
	"leak": true, "exfiltrate": true, "steal": true, "compress": true,
	"encrypt": true, "decrypt": true, "create": true, "delete": true,
	"remove": true, "modify": true, "drop": true, "install": true,
	"copy": true, "scan": true, "gather": true, "collect": true,
	"access": true, "contact": true, "communicate": true, "use": true,
	"leverage": true, "fork": true, "spawn": true, "beacon": true,
	"resolve": true, "query": true, "request": true, "fetch": true,
	"persist": true, "inject": true, "overwrite": true,
}

// instrumentVerbs are verbs whose direct object acts as the agent of a
// following action ("the attacker USED /bin/tar to read ..."): the dobj
// IOC is treated as the subject of the downstream relation.
var instrumentVerbs = map[string]bool{
	"use": true, "leverage": true, "launch": true, "run": true,
	"execute": true, "employ": true, "invoke": true, "utilize": true,
	"spawn": true, "start": true,
}

// corefPronouns are the pronoun surface forms resolved to IOC
// antecedents. Personal pronouns (he, she, they) refer to the human
// attacker, not to IOCs, and are deliberately excluded.
var corefPronouns = map[string]bool{
	"it": true, "its": true, "this": true, "which": true,
}

// annTree is a dependency tree annotated for relation extraction: per
// token, the restored IOC (if any), candidate-verb and pronoun flags, the
// coreference resolution, and the keep-set from tree simplification.
type annTree struct {
	dep  *nlp.DepTree
	sent string // protected sentence text

	iocAt   []*ioc.IOC // token -> restored IOC or nil
	isVerb  []bool     // candidate relation verb
	isPron  []bool     // coreference-candidate pronoun
	corefTo []*ioc.IOC // pronoun token -> resolved antecedent IOC or nil
	keep    []bool     // survives tree simplification

	block, sentIdx int
}

// buildTree tokenizes, tags, and parses one protected sentence, then
// removes IOC protection (restoring placeholder tokens to their original
// IOC text) and annotates the tree.
func buildTree(sentence string, prot *ioc.Protection, block, sentIdx int) *annTree {
	toks := nlp.Tokenize(sentence)
	nlp.Tag(toks, ioc.IsPlaceholder)
	dep := nlp.ParseDependency(toks)

	t := &annTree{
		dep: dep, sent: sentence,
		iocAt:   make([]*ioc.IOC, len(toks)),
		isVerb:  make([]bool, len(toks)),
		isPron:  make([]bool, len(toks)),
		corefTo: make([]*ioc.IOC, len(toks)),
		keep:    make([]bool, len(toks)),
		block:   block, sentIdx: sentIdx,
	}

	// Remove IOC protection: restore the original IOC into the tree.
	for i := range dep.Tokens {
		if restored := prot.Restore(dep.Tokens[i].Text); restored != nil {
			dep.Tokens[i].Text = restored.Text
			dep.Tokens[i].Lemma = restored.Text
			t.iocAt[i] = restored
		}
	}

	t.annotate()
	t.simplify()
	return t
}

// annotate marks IOC nodes, candidate relation verbs, and pronouns, and
// fills in lemmas.
func (t *annTree) annotate() {
	for i := range t.dep.Tokens {
		tok := &t.dep.Tokens[i]
		if t.iocAt[i] != nil {
			continue
		}
		tok.Lemma = nlp.Lemmatize(tok.Text)
		if strings.HasPrefix(tok.POS, "VB") && relationVerbs[tok.Lemma] {
			t.isVerb[i] = true
		}
		if (tok.POS == "PRP" || tok.POS == "WDT" || tok.POS == "DT") &&
			corefPronouns[strings.ToLower(tok.Text)] {
			// DT "this"/"that" count only when not determining a noun.
			if tok.POS == "DT" && i+1 < len(t.dep.Tokens) && strings.HasPrefix(t.dep.Tokens[i+1].POS, "NN") {
				continue
			}
			t.isPron[i] = true
		}
	}
}

// simplify computes the keep-set: a token survives when its subtree
// contains an IOC, a candidate verb, or a pronoun. This mirrors the
// paper's tree simplification, which removes paths without IOC nodes down
// to the leaves; we keep it logical (a marking) rather than physically
// rebuilding the tree.
func (t *annTree) simplify() {
	n := len(t.dep.Tokens)
	interesting := func(i int) bool {
		return t.iocAt[i] != nil || t.isVerb[i] || t.isPron[i]
	}
	// Mark every interesting node and all its ancestors.
	for i := 0; i < n; i++ {
		if !interesting(i) {
			continue
		}
		for _, j := range t.dep.PathToRoot(i) {
			if t.keep[j] {
				break
			}
			t.keep[j] = true
		}
	}
}

// KeptCount reports how many tokens survive simplification (for tests
// and diagnostics).
func (t *annTree) KeptCount() int {
	c := 0
	for _, k := range t.keep {
		if k {
			c++
		}
	}
	return c
}

// resolveCoref resolves pronoun tokens against the trees of preceding
// sentences within the same block. Following the paper, resolution checks
// POS tags and dependencies: a subject pronoun ("It wrote ...") resolves
// to the previous sentence's agent — its nsubj IOC if present, else the
// direct object of an instrument verb ("used /bin/tar to ..."), else the
// sentence's first IOC.
func (t *annTree) resolveCoref(prev []*annTree) {
	for i := range t.dep.Tokens {
		if !t.isPron[i] {
			continue
		}
		if t.dep.Label[i] == "nsubj" || t.dep.Label[i] == "nsubjpass" {
			for j := len(prev) - 1; j >= 0; j-- {
				if ant := prev[j].agentIOC(); ant != nil {
					t.corefTo[i] = ant
					break
				}
			}
			continue
		}
		// Non-subject pronouns ("compressed it", "leaked it"): resolve to
		// the most recent *object-role* IOC — in the current sentence if
		// one precedes the pronoun, else in previous sentences. The
		// pronoun's own clause subject is never a candidate ("gzip
		// compressed it": "it" cannot be gzip).
		if ant := t.objectIOCBefore(i); ant != nil {
			t.corefTo[i] = ant
			continue
		}
		for j := len(prev) - 1; j >= 0; j-- {
			if ant := prev[j].lastObjectIOC(); ant != nil {
				t.corefTo[i] = ant
				break
			}
		}
	}
}

// agentIOC returns the IOC acting as this sentence's agent: the nsubj
// IOC, else the direct object of an instrument verb, else nil.
func (t *annTree) agentIOC() *ioc.IOC {
	for i := range t.dep.Tokens {
		if t.iocAt[i] != nil && (t.dep.Label[i] == "nsubj" || t.dep.Label[i] == "nsubjpass") {
			return t.iocAt[i]
		}
	}
	for i := range t.dep.Tokens {
		if t.iocAt[i] == nil || t.dep.Label[i] != "dobj" {
			continue
		}
		h := t.dep.Head[i]
		if h >= 0 && instrumentVerbs[t.dep.Tokens[h].Lemma] {
			return t.iocAt[i]
		}
	}
	return nil
}

// lastObjectIOC returns the last IOC with an object-like dependency.
func (t *annTree) lastObjectIOC() *ioc.IOC {
	for i := len(t.dep.Tokens) - 1; i >= 0; i-- {
		if t.iocAt[i] != nil && (t.dep.Label[i] == "dobj" || t.dep.Label[i] == "pobj") {
			return t.iocAt[i]
		}
	}
	return nil
}

// objectIOCBefore returns the closest IOC token before position i in the
// same sentence that fills an object-like role (dobj or pobj).
func (t *annTree) objectIOCBefore(i int) *ioc.IOC {
	for j := i - 1; j >= 0; j-- {
		if t.iocAt[j] != nil && (t.dep.Label[j] == "dobj" || t.dep.Label[j] == "pobj") {
			return t.iocAt[j]
		}
	}
	return nil
}
