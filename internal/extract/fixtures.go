package extract

// Fig2Text is the OSCTI report text of the paper's running example
// (Figure 2), verbatim. It is exported so that examples, commands, and
// cross-package tests can exercise the exact pipeline the paper
// demonstrates.
const Fig2Text = `After the lateral movement stage, the attacker attempts to steal valuable assets from the host. This stage mainly involves the behaviors of local and remote file system scanning activities, copying and compressing of important files, and transferring the files to its C2 host. The details of the data leakage attack are as follows. As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After compression, the attacker used Gnu Privacy Guard (GnuPG) tool to encrypt the zipped file, which corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive information to /tmp/upload. Finally, the attacker leveraged the curl utility (/usr/bin/curl) to read the data from /tmp/upload. He leaked the gathered sensitive information back to the attacker C2 host by using /usr/bin/curl to connect to 192.168.29.128.`

// PasswordCrackText is an OSCTI-style description of the paper's first
// demo attack (Password Cracking After Shellshock Penetration),
// constructed the way the paper constructs attack descriptions from the
// way the attacks were performed.
const PasswordCrackText = `The attacker penetrated into the victim host by exploiting the Shellshock vulnerability against the web server. After the penetration, the attacker used /usr/bin/wget to connect to 162.125.248.18. It wrote the downloaded image to a file /tmp/logo.jpg. Then, the attacker leveraged /usr/bin/exiftool utility to read the metadata from /tmp/logo.jpg. Based on the decoded address, the attacker used /usr/bin/wget to connect to 192.168.29.128. It wrote the password cracker to a file /tmp/cracker. The attacker then used /tmp/cracker to read password hashes from /etc/shadow. Finally, /tmp/cracker wrote the extracted clear text to /tmp/passwords.txt. It leaked the results back by using /tmp/cracker to connect to 192.168.29.128.`
