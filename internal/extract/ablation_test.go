package extract

import (
	"testing"

	"repro/internal/ioc"
	"repro/internal/nlp"
)

// TestProtectionAblation verifies the property IOC protection exists to
// provide: the NLP stages see the same clean token structure no matter
// how gnarly the IOCs are, so extraction accuracy is invariant to IOC
// surface complexity. Two reports with identical grammar but wildly
// different IOC shapes must produce isomorphic behavior graphs.
func TestProtectionAblation(t *testing.T) {
	simple := "The attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to /tmp/out."
	// Same sentences, but with IOCs full of dots, digits, hashes, and
	// query strings that would perturb any general-purpose tokenizer.
	gnarly := "The attacker used /usr/lib64/x86_64/libexec/run-parts.v2.3.1 to read user credentials from /etc/pam.d/common-auth.so.1.0. It wrote the gathered information to https://evil-c2.example.com/up.php?id=9f8a&x=1."

	gs := Extract(simple)
	gg := Extract(gnarly)
	if len(gs.Edges) != len(gg.Edges) {
		t.Fatalf("IOC complexity changed extraction: %d vs %d edges\nsimple:\n%s\ngnarly:\n%s",
			len(gs.Edges), len(gg.Edges), gs.String(), gg.String())
	}
	for i := range gs.Edges {
		if gs.Edges[i].Verb != gg.Edges[i].Verb {
			t.Errorf("edge %d verb differs: %s vs %s", i, gs.Edges[i].Verb, gg.Edges[i].Verb)
		}
	}
}

// TestProtectionPreservesSegmentation: masking IOCs must not change how
// many sentences a block has, and sentences that *begin* with an IOC
// must still be segmented (the capitalized placeholder provides the
// boundary signal that a raw lowercase path would not).
func TestProtectionPreservesSegmentation(t *testing.T) {
	block := "As a first step, the attacker used /bin/tar to read user credentials from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2."
	prot := ioc.Protect(block)
	sents := nlp.SegmentSentences(prot.Text)
	if len(sents) != 3 {
		t.Fatalf("protected block should have 3 sentences, got %d: %q", len(sents), sents)
	}
	// The third sentence starts with the placeholder for /bin/bzip2.
	if !ioc.IsPlaceholder(nlp.Tokenize(sents[2])[0].Text) {
		t.Errorf("sentence 3 should start with a placeholder: %q", sents[2])
	}
}

// TestTreeSimplificationKeepsIOCPaths: simplification must keep every
// token on a root path to an IOC, verb, or pronoun, and drop pure
// decoration.
func TestTreeSimplificationKeepsIOCPaths(t *testing.T) {
	prot := ioc.Protect("Meanwhile, the extremely sophisticated attacker quietly used /bin/tar to read /etc/passwd.")
	tree := buildTree(nlp.SegmentSentences(prot.Text)[0], prot, 0, 0)
	kept := tree.KeptCount()
	total := len(tree.dep.Tokens)
	if kept == 0 || kept >= total {
		t.Fatalf("simplification kept %d of %d tokens", kept, total)
	}
	// Both IOC tokens must be kept.
	for i := range tree.dep.Tokens {
		if tree.iocAt[i] != nil && !tree.keep[i] {
			t.Errorf("IOC token %q dropped by simplification", tree.dep.Tokens[i].Text)
		}
	}
}

// TestCorefNonSubjectPronoun: "compressed it" resolves to the nearest
// preceding object IOC.
func TestCorefNonSubjectPronoun(t *testing.T) {
	g := Extract("The malware /tmp/evil.sh wrote data to /tmp/stage.bin. Then /bin/gzip compressed it.")
	found := false
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src.Text == "/bin/gzip" && dst.Text == "/tmp/stage.bin" {
			found = true
		}
	}
	if !found {
		t.Errorf("object pronoun not resolved:\n%s", g.String())
	}
}

// TestExtractMultiBlock: coreference must not leak across blocks (the
// paper resolves within a block only).
func TestExtractMultiBlock(t *testing.T) {
	doc := "The tool /bin/tar read /etc/passwd.\n\nIt wrote data to /tmp/x.out."
	g := Extract(doc)
	// "It" in block 2 has no antecedent within its own block, so no
	// tar->x.out edge may exist.
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src.Text == "/bin/tar" && dst.Text == "/tmp/x.out" {
			t.Errorf("coreference leaked across blocks:\n%s", g.String())
		}
	}
}

// TestExtractPassiveVoice: "X was read by Y" still yields (Y read X).
func TestExtractPassiveVoice(t *testing.T) {
	g := Extract("The file /etc/shadow was read by the malware /tmp/evil.sh.")
	found := false
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src.Text == "/tmp/evil.sh" && e.Verb == "read" && dst.Text == "/etc/shadow" {
			found = true
		}
	}
	if !found {
		t.Errorf("passive agent not recovered:\n%s", g.String())
	}
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src.Text == "/etc/shadow" && dst.Text == "/tmp/evil.sh" && e.Verb == "read" {
			t.Errorf("passive voice produced reversed edge:\n%s", g.String())
		}
	}
}
