package extract

import (
	"strings"

	"repro/internal/ioc"
)

// triplet is one extracted ⟨subject IOC, relation verb, object IOC⟩.
type triplet struct {
	subj, obj *ioc.IOC
	verb      string
	offset    int // verb occurrence offset for ordering
	sentence  string
}

// extractRelations enumerates all pairs of IOC-bearing tokens in the tree
// (IOC tokens plus coreference-resolved pronouns) and checks each pair
// for a subject-object relation using dependency-type rules over three
// parts of the dependency path: the common path from the root to the LCA
// and the two individual paths from the LCA to each node.
func (t *annTree) extractRelations() []triplet {
	type ref struct {
		tok int
		ioc *ioc.IOC
	}
	var refs []ref
	for i := range t.dep.Tokens {
		switch {
		case t.iocAt[i] != nil:
			refs = append(refs, ref{i, t.iocAt[i]})
		case t.corefTo[i] != nil:
			refs = append(refs, ref{i, t.corefTo[i]})
		}
	}

	var out []triplet
	for ai := 0; ai < len(refs); ai++ {
		for bi := 0; bi < len(refs); bi++ {
			if ai == bi {
				continue
			}
			a, b := refs[ai], refs[bi]
			// a as subject, b as object.
			verb, off, ok := t.checkPair(a.tok, b.tok)
			if !ok {
				continue
			}
			if a.ioc.Text == b.ioc.Text {
				continue // self relation after coref
			}
			out = append(out, triplet{
				subj: a.ioc, obj: b.ioc, verb: verb,
				offset:   off,
				sentence: t.sent,
			})
		}
	}
	return out
}

// pathDown returns the dependency labels from the LCA down to token x
// (top-down order), excluding the LCA itself, plus the token indexes
// visited.
func (t *annTree) pathDown(lca, x int) (labels []string, toks []int) {
	var up []int
	for i := x; i >= 0 && i != lca; i = t.dep.Head[i] {
		up = append(up, i)
		if len(up) > len(t.dep.Tokens) {
			return nil, nil
		}
	}
	for i := len(up) - 1; i >= 0; i-- {
		labels = append(labels, t.dep.Label[up[i]])
		toks = append(toks, up[i])
	}
	return labels, toks
}

// checkPair applies the dependency-type rules: it reports whether the
// token pair (s, o) stands in a subject-object relation, and if so
// returns the relation verb (lemmatized) and its occurrence offset.
func (t *annTree) checkPair(s, o int) (string, int, bool) {
	lca := t.dep.LCA(s, o)
	if lca < 0 {
		return "", 0, false
	}
	subjPath, subjToks := t.pathDown(lca, s)
	objPath, objToks := t.pathDown(lca, o)

	// Passive voice: "O was read by S" — the agent sits in a by-PP and
	// the patient is the passive subject.
	passive := len(stripTrailingNP(objPath)) == 1 && stripTrailingNP(objPath)[0] == "nsubjpass" &&
		len(subjPath) >= 2 && subjPath[0] == "prep" && subjPath[1] == "pobj" &&
		len(subjToks) > 0 && strings.EqualFold(t.dep.Tokens[subjToks[0]].Text, "by")

	if !passive {
		if !t.subjPathOK(subjPath, lca, objPath) {
			return "", 0, false
		}
		if !objPathOK(objPath) {
			return "", 0, false
		}
	}

	// Relation verb: scan annotated candidate verbs on the three path
	// parts (root→LCA is implicit in the LCA subtree; we consider the
	// LCA plus both down-paths) and select the one closest to the object
	// IOC node.
	cands := []int{}
	if t.isVerb[lca] {
		cands = append(cands, lca)
	}
	for _, i := range objToks {
		if t.isVerb[i] {
			cands = append(cands, i)
		}
	}
	for i := s; i >= 0 && i != lca; i = t.dep.Head[i] {
		if t.isVerb[i] {
			cands = append(cands, i)
		}
	}
	// Also consider verbs hanging directly off the object path (the
	// "reading" in acl constructions is ON the path, so already there).
	if len(cands) == 0 {
		// Fall back to the LCA when it is a verb at all.
		if isVerbPOS(t.dep.Tokens[lca].POS) {
			cands = append(cands, lca)
		} else {
			return "", 0, false
		}
	}
	best, bestDist := -1, 1<<30
	for _, v := range cands {
		d := o - v
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	verb := t.dep.Tokens[best].Lemma
	if verb == "" {
		verb = t.dep.Tokens[best].Text
	}
	off := t.block*1_000_000 + t.sentIdx*10_000 + best
	return verb, off, true
}

func isVerbPOS(pos string) bool {
	return len(pos) >= 2 && pos[0] == 'V' && pos[1] == 'B'
}

// subjPathOK applies the subject-side dependency rules.
//
//	[nsubj]                          — ordinary active subject (the
//	                                   passive nsubjpass is the patient
//	                                   and is handled by the dedicated
//	                                   passive rule in checkPair)
//	[]                               — the IOC heads the clause itself and
//	                                   the object hangs off it via acl
//	                                   ("process /usr/bin/gpg reading ...")
//	[dobj] (+trailing compound)      — instrument pattern: direct object
//	                                   of use/leverage/launch acting as
//	                                   the agent of the downstream verb
func (t *annTree) subjPathOK(p []string, lca int, objPath []string) bool {
	p = stripTrailingNP(p)
	switch {
	case len(p) == 0:
		return len(objPath) > 0 && (objPath[0] == "acl" || objPath[0] == "relcl")
	case len(p) == 1 && p[0] == "nsubj":
		return true
	case len(p) == 1 && p[0] == "dobj":
		return instrumentVerbs[t.dep.Tokens[lca].Lemma]
	}
	return false
}

// objPathOK applies the object-side dependency rules: an optional chain
// of clause links (xcomp, conj, acl, relcl — at most three) followed by
// dobj or prep+pobj, with an optional trailing compound/appos step when
// the IOC sits inside a larger NP.
func objPathOK(p []string) bool {
	p = stripTrailingNP(p)
	// Strip leading clause links.
	links := 0
	for len(p) > 0 && (p[0] == "xcomp" || p[0] == "conj" || p[0] == "acl" || p[0] == "relcl") {
		p = p[1:]
		links++
		if links > 3 {
			return false
		}
	}
	switch {
	case len(p) == 1 && p[0] == "dobj":
		return true
	case len(p) == 2 && p[0] == "prep" && p[1] == "pobj":
		return true
	}
	return false
}

// stripTrailingNP drops a trailing compound/appos/nummod step: the IOC
// may sit inside an NP whose head carries the grammatical role ("the
// /bin/bzip2 utility").
func stripTrailingNP(p []string) []string {
	for len(p) > 0 {
		last := p[len(p)-1]
		if last == "compound" || last == "appos" || last == "nummod" || last == "amod" {
			p = p[:len(p)-1]
			continue
		}
		break
	}
	return p
}
