// Package extract implements ThreatRaptor's threat behavior extraction
// pipeline (Algorithm 1 in the paper): given unstructured OSCTI report
// text, it extracts IOCs and IOC relations and constructs a threat
// behavior graph amenable to automated query synthesis.
//
// Pipeline stages: block segmentation → IOC recognition & protection →
// sentence segmentation → dependency parsing → protection removal → tree
// annotation → tree simplification → coreference resolution → IOC scan &
// merge → LCA-based IOC relation extraction → graph construction.
package extract

import (
	"fmt"
	"strings"

	"repro/internal/ioc"
)

// Node is one IOC entity in the threat behavior graph.
type Node struct {
	ID      int
	Type    ioc.Type
	Text    string   // canonical surface form
	Aliases []string // other surface forms merged into this node
}

// Edge is one extracted IOC relation. Each edge carries a sequence number
// indicating the step order of the threat behavior, assigned by sorting
// relations by the occurrence offset of their relation verbs in the text.
type Edge struct {
	Src  int    // source node ID (subject)
	Dst  int    // destination node ID (object)
	Verb string // lemmatized relation verb
	Seq  int    // 1-based step order
	// Offset is the global occurrence position of the relation verb,
	// used for ordering (block, sentence, token encoded).
	Offset int
	// Sentence is the protected-text sentence the relation came from,
	// kept for explainability.
	Sentence string
}

// Graph is a threat behavior graph.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// NodeByID returns the node with the given ID, or nil.
func (g *Graph) NodeByID(id int) *Node {
	if id < 0 || id >= len(g.Nodes) {
		return nil
	}
	return &g.Nodes[id]
}

// String renders the graph in a compact human-readable form, edges in
// sequence order.
func (g *Graph) String() string {
	var b strings.Builder
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src == nil || dst == nil {
			continue
		}
		fmt.Fprintf(&b, "%d: %s(%s) -%s-> %s(%s)\n",
			e.Seq, src.Text, src.Type, e.Verb, dst.Text, dst.Type)
	}
	return b.String()
}
