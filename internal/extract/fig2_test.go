package extract

import (
	"testing"

	"repro/internal/ioc"
)

// fig2WantEdges is the paper's threat behavior graph for Fig. 2: the
// eight-step data leakage chain.
var fig2WantEdges = []struct {
	src, verb, dst string
}{
	{"/bin/tar", "read", "/etc/passwd"},
	{"/bin/tar", "write", "/tmp/upload.tar"},
	{"/bin/bzip2", "read", "/tmp/upload.tar"},
	{"/bin/bzip2", "write", "/tmp/upload.tar.bz2"},
	{"/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"},
	{"/usr/bin/gpg", "write", "/tmp/upload"},
	{"/usr/bin/curl", "read", "/tmp/upload"},
	{"/usr/bin/curl", "connect", "192.168.29.128"},
}

func edgeSet(g *Graph) map[[3]string]int {
	out := map[[3]string]int{}
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src == nil || dst == nil {
			continue
		}
		out[[3]string{src.Text, e.Verb, dst.Text}] = e.Seq
	}
	return out
}

func TestExtractFig2Nodes(t *testing.T) {
	g := Extract(Fig2Text)
	wantNodes := []string{
		"/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
		"/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload",
		"/usr/bin/curl", "192.168.29.128",
	}
	have := map[string]bool{}
	for _, n := range g.Nodes {
		have[n.Text] = true
	}
	for _, w := range wantNodes {
		if !have[w] {
			t.Errorf("missing node %q\ngraph:\n%s", w, g.String())
		}
	}
}

func TestExtractFig2Edges(t *testing.T) {
	g := Extract(Fig2Text)
	got := edgeSet(g)
	for _, w := range fig2WantEdges {
		if _, ok := got[[3]string{w.src, w.verb, w.dst}]; !ok {
			t.Errorf("missing edge %s -%s-> %s", w.src, w.verb, w.dst)
		}
	}
	if t.Failed() {
		t.Logf("extracted graph:\n%s", g.String())
	}
}

func TestExtractFig2EdgeOrder(t *testing.T) {
	g := Extract(Fig2Text)
	got := edgeSet(g)
	prev := 0
	for _, w := range fig2WantEdges {
		seq, ok := got[[3]string{w.src, w.verb, w.dst}]
		if !ok {
			t.Skipf("edge %v missing; ordering not checkable", w)
		}
		if seq <= prev {
			t.Errorf("edge %s -%s-> %s out of order: seq %d after %d", w.src, w.verb, w.dst, seq, prev)
		}
		prev = seq
	}
}

func TestExtractFig2Coref(t *testing.T) {
	// "It wrote the gathered information to a file /tmp/upload.tar" —
	// the tar→upload.tar write edge exists only if "It" resolves to
	// /bin/tar.
	g := Extract(Fig2Text)
	got := edgeSet(g)
	if _, ok := got[[3]string{"/bin/tar", "write", "/tmp/upload.tar"}]; !ok {
		t.Errorf("coreference failed: no tar-write-upload.tar edge\n%s", g.String())
	}
}

func TestExtractEmptyDocument(t *testing.T) {
	g := Extract("")
	if len(g.Nodes) != 0 || len(g.Edges) != 0 {
		t.Errorf("empty doc produced %d nodes, %d edges", len(g.Nodes), len(g.Edges))
	}
}

func TestExtractNoIOCs(t *testing.T) {
	g := Extract("The attacker attempts to steal valuable assets from the host. Nothing specific is known.")
	if len(g.Edges) != 0 {
		t.Errorf("IOC-free doc produced edges: %s", g.String())
	}
}

func TestExtractSingleRelation(t *testing.T) {
	g := Extract("The malware /tmp/evil.sh read /etc/shadow.")
	got := edgeSet(g)
	if _, ok := got[[3]string{"/tmp/evil.sh", "read", "/etc/shadow"}]; !ok {
		t.Errorf("simple SVO missed: %s", g.String())
	}
}

func TestExtractInstrumentPattern(t *testing.T) {
	g := Extract("The attacker used /usr/bin/wget to download http://evil.com/payload.sh.")
	found := false
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src.Text == "/usr/bin/wget" && e.Verb == "download" && dst.Type == ioc.URL {
			found = true
		}
	}
	if !found {
		t.Errorf("instrument pattern missed: %s", g.String())
	}
}

func TestExtractConjoinedVerbs(t *testing.T) {
	g := Extract("/bin/cat read from /etc/hosts and wrote to /tmp/out.txt.")
	got := edgeSet(g)
	if _, ok := got[[3]string{"/bin/cat", "read", "/etc/hosts"}]; !ok {
		t.Errorf("first conjunct missed: %s", g.String())
	}
	if _, ok := got[[3]string{"/bin/cat", "write", "/tmp/out.txt"}]; !ok {
		t.Errorf("second conjunct missed: %s", g.String())
	}
}

func TestExtractSeqNumbersDense(t *testing.T) {
	g := Extract(Fig2Text)
	for i, e := range g.Edges {
		if e.Seq != i+1 {
			t.Errorf("edge %d has seq %d", i, e.Seq)
		}
	}
}

func TestExtractNoSelfLoops(t *testing.T) {
	g := Extract(Fig2Text)
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Errorf("self loop on node %d", e.Src)
		}
	}
}
