package extract

import (
	"sort"
	"strings"

	"repro/internal/ioc"
	"repro/internal/nlp"
)

// Extract runs the full threat behavior extraction pipeline (Algorithm 1)
// on an OSCTI report and returns the threat behavior graph.
func Extract(document string) *Graph {
	var allTrees []*annTree
	var allIOCs []ioc.IOC

	// Lines 3-14: per block — protect IOCs, segment sentences, parse,
	// restore, annotate, simplify, then resolve coreference across the
	// block's trees.
	for bi, block := range nlp.SegmentBlocks(document) {
		prot := ioc.Protect(block)
		allIOCs = append(allIOCs, prot.IOCs...)

		var trees []*annTree
		for si, sent := range nlp.SegmentSentences(prot.Text) {
			trees = append(trees, buildTree(sent, prot, bi, si))
		}
		for i, t := range trees {
			t.resolveCoref(trees[:i])
		}
		allTrees = append(allTrees, trees...)
	}

	// Line 15: IOC scan and merge across all blocks.
	merged := ioc.ScanMerge(allIOCs)

	// Lines 16-18: relation extraction per tree.
	var trips []triplet
	for _, t := range allTrees {
		trips = append(trips, t.extractRelations()...)
	}

	// Line 19: graph construction.
	return constructGraph(merged, trips)
}

// constructGraph maps triplets onto merged IOC nodes, orders them by the
// occurrence offset of the relation verb, deduplicates, and assigns
// sequence numbers.
func constructGraph(merged []ioc.Merged, trips []triplet) *Graph {
	g := &Graph{}
	index := map[string]int{} // normalized surface form -> node id
	for i, m := range merged {
		g.Nodes = append(g.Nodes, Node{ID: i, Type: m.Type, Text: m.Text, Aliases: m.Aliases})
		index[mergeKey(m.Type, m.Text)] = i
		for _, a := range m.Aliases {
			index[mergeKey(m.Type, a)] = i
		}
	}
	lookup := func(x *ioc.IOC) (int, bool) {
		norm := ioc.Normalize(x.Type, x.Text)
		if id, ok := index[mergeKey(x.Type, norm)]; ok {
			return id, true
		}
		// The IOC may have merged under a compatible type (filename into
		// filepath, CIDR into IP); fall back to a text-only scan.
		for i, n := range g.Nodes {
			if n.Text == norm {
				return i, true
			}
			for _, a := range n.Aliases {
				if a == norm {
					return i, true
				}
			}
		}
		return 0, false
	}

	sort.SliceStable(trips, func(i, j int) bool { return trips[i].offset < trips[j].offset })

	type edgeKey struct {
		src, dst int
		verb     string
	}
	seen := map[edgeKey]bool{}
	seq := 0
	for _, tr := range trips {
		src, ok1 := lookup(tr.subj)
		dst, ok2 := lookup(tr.obj)
		if !ok1 || !ok2 || src == dst {
			continue
		}
		k := edgeKey{src, dst, tr.verb}
		if seen[k] {
			continue
		}
		seen[k] = true
		seq++
		g.Edges = append(g.Edges, Edge{
			Src: src, Dst: dst, Verb: tr.verb, Seq: seq,
			Offset: tr.offset, Sentence: tr.sentence,
		})
	}
	return g
}

// mergeKey builds the node-index key. Filepath/filename and IP/CIDR
// share a key space because ScanMerge treats them as compatible.
func mergeKey(t ioc.Type, text string) string {
	var class string
	switch t {
	case ioc.Filepath, ioc.Filename:
		class = "file"
	case ioc.IP, ioc.CIDR:
		class = "ip"
	default:
		class = t.String()
	}
	return class + "|" + strings.ToLower(text)
}
