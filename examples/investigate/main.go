// Investigate chains threat hunting with attack investigation: a TBQL
// hunt produces a hit (the C2 connection), and causality tracking expands
// it into the complete attack provenance — backward to the Shellshock
// entry point and forward from the first file the attacker touched.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/audit/gen"
)

func main() {
	w := gen.Generate(gen.Config{
		Seed:         5,
		BenignEvents: 5000,
		Attacks:      []gen.Attack{{Kind: gen.AttackDataLeakage, At: 20 * time.Minute}},
	})
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.IngestRecords(w.Records); err != nil {
		log.Fatal(err)
	}

	// Step 1: a minimal hunt finds the exfiltration endpoint.
	res, err := sys.Hunt(`proc p read file f["%/etc/passwd%"] as evt1
proc p2 connect ip i["192.168.29.128"] as evt2
with evt1 before evt2
return distinct i.dstip, i.dstport`)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rows) == 0 {
		log.Fatal("hunt found nothing")
	}
	fmt.Printf("hunt hit: connection to %s:%s\n", res.Rows[0][0], res.Rows[0][1])

	// Step 2: backward tracking from the C2 connection reconstructs the
	// causal chain that produced it.
	var poi *threatraptor.Entity
	for _, e := range sys.FindEntities("dstip", "192.168.29.128") {
		if e.DstPort == 443 {
			poi = e
			break
		}
	}
	if poi == nil {
		log.Fatal("no C2 entity")
	}
	back := sys.Investigate(poi.ID, threatraptor.TrackOptions{
		Direction: threatraptor.TrackBackward,
	})
	// Full backward provenance suffers the classic dependency explosion:
	// the attacker's file-system scan touches files that benign editors
	// also wrote, pulling their histories in. The attack chain itself is
	// the dense tail right before the connection.
	fmt.Printf("\nbackward provenance of the C2 connection: %d events total\n", len(back.Events))
	tail := back.Events
	if len(tail) > 16 {
		tail = tail[len(tail)-16:]
	}
	fmt.Println("last events before the exfiltration:")
	for _, ev := range tail {
		src, dst := sys.EntityByID(ev.SrcID), sys.EntityByID(ev.DstID)
		fmt.Printf("  %s  %-22s %-8s %s\n",
			time.Unix(0, ev.StartTime).UTC().Format("15:04:05.000"),
			src.Name(), ev.Op, dst.Name())
	}

	// Step 3: forward tracking from /etc/passwd shows everything the
	// stolen credentials reached.
	passwd := sys.FindEntities("path", "/etc/passwd")
	if len(passwd) == 0 {
		log.Fatal("no /etc/passwd entity")
	}
	fwd := sys.Investigate(passwd[0].ID, threatraptor.TrackOptions{
		Direction: threatraptor.TrackForward,
		MaxDepth:  10,
	})
	fmt.Printf("\nforward impact of /etc/passwd: %d entities touched, including:\n", len(fwd.EntityIDs))
	for id := range fwd.EntityIDs {
		e := sys.EntityByID(id)
		if e != nil && (e.Type == threatraptor.EntityNetConnType || e.Path == "/tmp/upload") {
			fmt.Printf("  %s (%s)\n", e.Name(), e.Type)
		}
	}
}
