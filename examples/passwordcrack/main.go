// Passwordcrack reproduces the paper's first demo attack: "Password
// Cracking After Shellshock Penetration". The attacker fetches an image
// whose EXIF metadata encodes the C2 address, downloads a password
// cracker from C2, and runs it against the shadow file. The hunt is
// driven purely by the natural-language attack description.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/audit/gen"
	"repro/internal/extract"
)

func main() {
	w := gen.Generate(gen.Config{
		Seed:         7,
		BenignEvents: 6000,
		Duration:     2 * time.Hour,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 45 * time.Minute}},
	})

	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.IngestRecords(w.Records); err != nil {
		log.Fatal(err)
	}

	q, res, err := sys.HuntReport(extract.PasswordCrackText, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized query:\n%s\n\n", q)
	fmt.Printf("%d matching chain(s)\n", len(res.Rows))
	for _, row := range res.Rows {
		for i, col := range res.Cols {
			fmt.Printf("  %-12s = %s\n", col, row[i])
		}
	}

	// Cross-check key artifacts against the simulator's ground truth.
	found := map[string]bool{}
	for _, row := range res.Rows {
		for _, v := range row {
			found[v] = true
		}
	}
	for _, artifact := range []string{"/tmp/cracker", "/etc/shadow", "/tmp/logo.jpg", gen.C2IP} {
		status := "MISSED"
		if found[artifact] {
			status = "found"
		}
		fmt.Printf("artifact %-18s %s\n", artifact, status)
	}
}
