// Dataleakage reproduces the paper's Figure 2 scenario end to end: a
// simulated host suffers the "Data Leakage After Shellshock Penetration"
// attack among thousands of benign events; the OSCTI report describing
// the attack is fed to ThreatRaptor, which extracts the threat behavior
// graph, synthesizes the TBQL query, and hunts down every step.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/audit/gen"
	"repro/internal/extract"
)

func main() {
	// Simulate the audited host: benign enterprise activity plus the
	// scripted multi-stage attack at minute 30.
	w := gen.Generate(gen.Config{
		Seed:         2021,
		BenignEvents: 8000,
		Duration:     time.Hour,
		Attacks:      []gen.Attack{{Kind: gen.AttackDataLeakage, At: 30 * time.Minute}},
	})

	sys, err := threatraptor.New(threatraptor.Options{CPR: true})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sys.IngestRecords(w.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: %d audit events stored (%.2fx CPR reduction), %d entities\n\n",
		stats.EventsStored, stats.CPRReduction, stats.Entities)

	// The OSCTI report is the paper's Fig. 2 text, verbatim.
	g := sys.ExtractBehavior(extract.Fig2Text)
	fmt.Printf("threat behavior graph (%d nodes, %d edges):\n%s\n", len(g.Nodes), len(g.Edges), g)

	q, rep, err := sys.SynthesizeQuery(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range rep.DroppedEdges {
		fmt.Printf("screened out: %s\n", d)
	}
	fmt.Printf("\nsynthesized TBQL:\n%s\n\n", q)

	start := time.Now()
	res, err := sys.HuntQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hunt finished in %v: %d matching chain(s)\n", time.Since(start).Round(time.Millisecond), len(res.Rows))
	for _, row := range res.Rows {
		for i, col := range res.Cols {
			fmt.Printf("  %-12s = %s\n", col, row[i])
		}
	}

	// Validate against the simulator's ground truth.
	fmt.Printf("\nground truth: %d attack steps were injected; ", len(w.Truth))
	if len(res.Matches) == 1 {
		fmt.Println("the single matched chain is the attack. Recall: 8/8 steps.")
	} else {
		fmt.Printf("matched %d chains.\n", len(res.Matches))
	}
}
