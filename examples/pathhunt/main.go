// Pathhunt demonstrates the advanced TBQL syntax and user-defined
// synthesis plans: variable-length event path patterns that bridge
// intermediate processes the OSCTI text never mentions (the shell that
// forks each utility), executed on the graph backend via compiled Cypher.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
	"repro/internal/audit/gen"
)

func main() {
	w := gen.Generate(gen.Config{
		Seed:         99,
		BenignEvents: 3000,
		Attacks:      []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}},
	})
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.IngestRecords(w.Records); err != nil {
		log.Fatal(err)
	}

	// A hand-written path hunt: did the web server reach the password
	// file through ANY chain of at most 4 events? The OSCTI text never
	// mentions apache2 or the forked bash — the path pattern covers them.
	const pathQuery = `proc web["%/usr/sbin/apache2%"] ~>(1~4)[read] file cred["%/etc/passwd%"] as reach
return distinct web, cred`

	res, err := sys.Hunt(pathQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path hunt: %d chain(s) from the web server to the password file\n", len(res.Rows))
	for _, dq := range res.Stats.DataQueries {
		if strings.HasPrefix(dq, "MATCH") {
			fmt.Printf("  compiled Cypher: %s\n", dq)
		}
	}

	// A user-defined synthesis plan: every edge of the behavior graph
	// becomes a bounded path pattern with a time window, so the hunt
	// tolerates intermediate forks AND constrains the search window.
	report := "The attacker used /bin/tar to read user credentials from /etc/passwd. " +
		"Then /usr/bin/curl sent the data to 192.168.29.128."
	g := sys.ExtractBehavior(report)
	windowStart := w.Records[0].StartNS
	windowEnd := w.Records[len(w.Records)-1].EndNS
	plan := &threatraptor.SynthPlan{
		UsePaths: true, PathMin: 1, PathMax: 3,
		Window: &threatraptor.TimeWindow{From: windowStart, To: windowEnd},
	}
	q, _, err := sys.SynthesizeQuery(g, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan-synthesized query:\n%s\n", q)
	res2, err := sys.HuntQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d match(es)\n", len(res2.Rows))
	for _, row := range res2.Rows {
		fmt.Printf("  %s\n", strings.Join(row, " | "))
	}
}
