// Quickstart: the minimal ThreatRaptor workflow — ingest audit records,
// write a TBQL query by hand, and hunt.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/audit"
)

func main() {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A tiny hand-written audit trail: a shell reads the password file
	// and exfiltrates it.
	recs := []threatraptor.Record{
		{StartNS: 100, EndNS: 110, Host: "web1", PID: 41, Exe: "/bin/bash",
			Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 2949},
		{StartNS: 200, EndNS: 210, Host: "web1", PID: 41, Exe: "/bin/bash",
			Op: audit.OpConnect, ObjType: audit.EntityNetConn,
			ObjSpec: audit.ConnSpec("10.0.0.5", 40000, "203.0.113.7", 443, "tcp"), Amount: 2949},
		// Benign noise: sshd also reads /etc/passwd but never connects out.
		{StartNS: 150, EndNS: 160, Host: "web1", PID: 77, Exe: "/usr/sbin/sshd",
			Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 2949},
	}
	if _, err := sys.IngestRecords(recs); err != nil {
		log.Fatal(err)
	}

	// TBQL: a process that reads the password file and THEN connects out.
	const query = `proc p read file f["%/etc/passwd%"] as evt1
proc p connect ip i as evt2
with evt1 before evt2
return distinct p, f, i`

	res, err := sys.Hunt(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("suspicious credential exfiltration:")
	for _, row := range res.Rows {
		fmt.Printf("  process %s read %s and connected to %s\n", row[0], row[1], row[2])
	}
	// Output:
	// suspicious credential exfiltration:
	//   process /bin/bash read /etc/passwd and connected to 203.0.113.7
}
