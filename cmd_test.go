package threatraptor

// Integration smoke tests for the command-line tools: each binary is
// built once and exercised end to end on generated data.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/extract"
)

// buildCommands compiles all binaries into a temp dir, once per test run.
func buildCommands(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI builds")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"./cmd/threatraptor", "./cmd/tbql", "./cmd/auditgen", "./cmd/ctigen")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", bin, args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCommandsEndToEnd(t *testing.T) {
	bin := buildCommands(t)
	work := t.TempDir()
	logFile := filepath.Join(work, "host1.log")
	reportFile := filepath.Join(work, "report.txt")
	queryFile := filepath.Join(work, "hunt.tbql")

	// auditgen: generate a workload with the data-leakage attack.
	run(t, filepath.Join(bin, "auditgen"),
		"-benign", "1000", "-attacks", "leak@5m", "-o", logFile, "-q")
	data, err := os.ReadFile(logFile)
	if err != nil || len(data) == 0 {
		t.Fatalf("auditgen produced no log: %v", err)
	}

	// Write the Fig. 2 report for report-driven commands.
	if err := os.WriteFile(reportFile, []byte(extract.Fig2Text), 0o644); err != nil {
		t.Fatal(err)
	}

	// threatraptor extract.
	stdout, _ := run(t, filepath.Join(bin, "threatraptor"), "extract", "-report", reportFile)
	if !strings.Contains(stdout, "/bin/tar") || !strings.Contains(stdout, "-read->") {
		t.Errorf("extract output missing graph: %s", stdout)
	}

	// threatraptor synth.
	stdout, _ = run(t, filepath.Join(bin, "threatraptor"), "synth", "-report", reportFile)
	if !strings.Contains(stdout, "proc p1") || !strings.Contains(stdout, "return distinct") {
		t.Errorf("synth output missing query: %s", stdout)
	}
	if err := os.WriteFile(queryFile, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}

	// threatraptor hunt from the report.
	stdout, _ = run(t, filepath.Join(bin, "threatraptor"), "hunt", "-logs", logFile, "-report", reportFile)
	if !strings.Contains(stdout, "192.168.29.128") {
		t.Errorf("hunt did not find the attack:\n%s", stdout)
	}

	// threatraptor explain with the synthesized query file.
	stdout, _ = run(t, filepath.Join(bin, "threatraptor"), "explain", "-logs", logFile, "-query", queryFile)
	if !strings.Contains(stdout, "SELECT") || !strings.Contains(stdout, "compiled data queries") {
		t.Errorf("explain output wrong:\n%s", stdout)
	}

	// tbql with an inline query.
	stdout, _ = run(t, filepath.Join(bin, "tbql"),
		"-logs", logFile, "-e", "proc p read file f[\"%/etc/passwd%\"] as e1\nreturn distinct p")
	if !strings.Contains(stdout, "/bin/tar") {
		t.Errorf("tbql output missing match:\n%s", stdout)
	}

	// threatraptor eval-nlp (small corpus).
	stdout, _ = run(t, filepath.Join(bin, "threatraptor"), "eval-nlp", "-n", "3", "-steps", "3")
	if !strings.Contains(stdout, "threatraptor") || !strings.Contains(stdout, "REL-F1") {
		t.Errorf("eval-nlp output wrong:\n%s", stdout)
	}

	// threatraptor demo (small).
	stdout, _ = run(t, filepath.Join(bin, "threatraptor"), "demo", "-benign", "500")
	if !strings.Contains(stdout, "ground truth") {
		t.Errorf("demo output wrong:\n%s", stdout)
	}

	// ctigen.
	stdout, _ = run(t, filepath.Join(bin, "ctigen"), "-n", "2", "-steps", "3")
	if !strings.Contains(stdout, "# Relations:") {
		t.Errorf("ctigen output wrong:\n%s", stdout)
	}
}

// TestDaemonFlagValidation: threatraptord must reject nonsensical
// flags at startup with actionable errors — the friendly-error style
// every tuning knob follows (-plan-cache joins -cursor-ttl and
// friends).
func TestDaemonFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI builds")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/threatraptord")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	bin := filepath.Join(dir, "threatraptord")

	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-plan-cache", "-1"}, "-plan-cache must be >= 0"},
		{[]string{"-shards", "0"}, "-shards must be >= 1"},
		{[]string{"-cursor-ttl", "0s"}, "-cursor-ttl must be positive"},
		{[]string{"-max-cursors", "0"}, "-max-cursors must be >= 1"},
		{[]string{"-max-propagated-ids", "-5"}, "-max-propagated-ids must be >= 0"},
	}
	for _, tc := range cases {
		var stderr bytes.Buffer
		// The daemon must die during flag validation. Start + deadline
		// instead of Run: if validation regresses, the daemon starts
		// serving and would hang the test forever — kill it and fail.
		cmd := exec.Command(bin, tc.args...)
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%v: daemon exited 0 despite invalid flags", tc.args)
				continue
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
			t.Errorf("%v: daemon started despite invalid flags", tc.args)
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr = %q, want it to mention %q", tc.args, stderr.String(), tc.want)
		}
	}
}
