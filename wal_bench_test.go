package threatraptor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/wal"
)

// BenchmarkIngestWAL measures the durability tax on multi-host ingest:
// the same 8-host parallel workload as BenchmarkIngestParallelSharded,
// with the WAL off, fsync-never (write-only), fsync-batched (the
// default 100ms group sync), and fsync-always (one group-committed
// sync per acknowledged batch). The acceptance bar is fsync-batched
// within 2× of WAL-off; fsync-always pays real disk latency per batch
// and is reported for the durability/throughput trade-off curve.
func BenchmarkIngestWAL(b *testing.B) {
	const hosts = 8
	const perBatch = 1000
	batches := make([][]Record, hosts)
	for h := range batches {
		batches[h] = hostBatch(fmt.Sprintf("host%d", h), 1, perBatch)
	}
	modes := []struct {
		name  string
		wal   bool
		fsync wal.Policy
	}{
		{"wal-off", false, wal.Policy{}},
		{"fsync-never", true, wal.Policy{Mode: wal.FsyncNever}},
		{"fsync-batched", true, wal.Policy{Mode: wal.FsyncBatched, Interval: wal.DefaultFsyncInterval}},
		{"fsync-always", true, wal.Policy{Mode: wal.FsyncAlways}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(hosts * perBatch))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := Options{Shards: 8}
				var log *wal.Log
				if mode.wal {
					var err error
					log, err = wal.Open(b.TempDir(), wal.Config{Fsync: mode.fsync, Shards: 8})
					if err != nil {
						b.Fatal(err)
					}
					opts.WAL = log
				}
				sys, err := New(opts)
				if err != nil {
					b.Fatal(err)
				}
				for h := 0; h < hosts; h++ {
					// Warmup interns each host's entities so the timed batches
					// are event-only, as in BenchmarkIngestParallelSharded.
					if _, err := sys.IngestRecords(batches[h]); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for h := 0; h < hosts; h++ {
					wg.Add(1)
					go func(h int) {
						defer wg.Done()
						if _, err := sys.IngestRecords(batches[h]); err != nil {
							b.Error(err)
						}
					}(h)
				}
				wg.Wait()
				b.StopTimer()
				if log != nil {
					log.Close()
				}
			}
		})
	}
}

// synthCommit builds one WAL commit of events (entities only on the
// first commit), sized like a chunked ingest commit.
func synthCommit(epoch uint64, events int) *wal.Commit {
	c := &wal.Commit{Epoch: epoch}
	if epoch == 1 {
		for i := 0; i < 64; i++ {
			c.Entities = append(c.Entities, &audit.Entity{
				ID: int64(i + 1), Type: audit.EntityFile, Host: "host0",
				Path: fmt.Sprintf("/data/file-%d", i),
			})
		}
	}
	base := int64(epoch) * 1_000_000
	for i := 0; i < events; i++ {
		c.Events = append(c.Events, &audit.Event{
			ID: base + int64(i), SrcID: int64(i%64 + 1), DstID: int64((i+1)%64 + 1),
			Op: audit.OpRead, StartTime: base + int64(i)*10, EndTime: base + int64(i)*10 + 1,
			Amount: 64, Host: "host0",
		})
	}
	return c
}

// BenchmarkWALRecovery measures restart replay wall-time against log
// size: the log is written once per size (outside the timer) with
// synthetic commits of 5000 events each, then each iteration replays
// it through a decode-everything apply. The 1M-event case is the
// headline number the CI bench publishes (recovery wall-time for a
// 1M-event log).
func BenchmarkWALRecovery(b *testing.B) {
	for _, total := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("events-%d", total), func(b *testing.B) {
			const perCommit = 5000
			dir := b.TempDir()
			log, err := wal.Open(dir, wal.Config{Fsync: wal.Policy{Mode: wal.FsyncNever}})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := log.Replay(func(*wal.Commit) error { return nil }); err != nil {
				b.Fatal(err)
			}
			for e := uint64(1); int(e-1)*perCommit < total; e++ {
				if _, err := log.Append(synthCommit(e, perCommit)); err != nil {
					b.Fatal(err)
				}
			}
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replay, err := wal.Open(dir, wal.Config{})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				info, err := replay.Replay(func(c *wal.Commit) error {
					n += len(c.Events)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != total {
					b.Fatalf("replayed %d events, want %d", n, total)
				}
				_ = info
				b.StopTimer()
				// Replay consumed the clean marker; rewrite it so every
				// iteration replays the same clean log.
				if err := replay.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
