package threatraptor

// The benchmark harness regenerates every experiment in DESIGN.md §3:
//
//	E1 BenchmarkFig2Pipeline        — Fig. 2 end-to-end pipeline
//	E2 BenchmarkHuntPasswordCrack   — demo attack 1 hunt vs. noise level
//	E3 BenchmarkHuntDataLeakage     — demo attack 2 hunt vs. noise level
//	E4 BenchmarkNLPExtraction       — extraction pipeline vs. baselines
//	E5 BenchmarkExecScheduledVsNaive, BenchmarkExecScaling — query
//	   efficiency: scheduling + propagation ablation, data-size scaling
//	E6 BenchmarkCPRReduction        — causality-preserved reduction
//	E7 BenchmarkQueryConciseness    — TBQL vs. compiled SQL/Cypher size
//	E8 BenchmarkIngest              — parse + store throughput
//
// Run: go test -bench=. -benchmem .

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
	"repro/internal/ctigen"
	"repro/internal/eval"
	"repro/internal/extract"
	"repro/internal/provenance"
)

// ---------------------------------------------------------------------------
// Shared fixtures (built once; benchmarks must not pay setup in the loop).

type fixture struct {
	sys   *System
	truth *gen.Workload
	query *Query
}

var (
	fixtures   = map[string]*fixture{}
	fixturesMu sync.Mutex
)

// loadFixture builds (once) a system with the given workload and the
// Fig. 2 query synthesized from the Fig. 2 report text.
func loadFixture(b *testing.B, name string, cfg gen.Config, report string) *fixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	sys, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	w := gen.Generate(cfg)
	if _, err := sys.IngestRecords(w.Records); err != nil {
		b.Fatal(err)
	}
	f := &fixture{sys: sys, truth: w}
	if report != "" {
		g := sys.ExtractBehavior(report)
		q, _, err := sys.SynthesizeQuery(g, nil)
		if err != nil {
			b.Fatal(err)
		}
		f.query = q
	}
	fixtures[name] = f
	return f
}

func leakCfg(benign int) gen.Config {
	return gen.Config{
		Seed: 1, BenignEvents: benign, Duration: time.Hour,
		Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 30 * time.Minute}},
	}
}

func crackCfg(benign int) gen.Config {
	return gen.Config{
		Seed: 1, BenignEvents: benign, Duration: time.Hour,
		Attacks: []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 30 * time.Minute}},
	}
}

// ---------------------------------------------------------------------------
// E1: the Fig. 2 pipeline, end to end and per stage.

func BenchmarkFig2Pipeline(b *testing.B) {
	f := loadFixture(b, "leak10k", leakCfg(10000), "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := f.sys.ExtractBehavior(extract.Fig2Text)
		q, _, err := f.sys.SynthesizeQuery(g, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.sys.HuntQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("want 1 match, got %d", len(res.Rows))
		}
	}
}

func BenchmarkFig2Extract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := extract.Extract(extract.Fig2Text)
		if len(g.Edges) < 8 {
			b.Fatalf("extracted %d edges", len(g.Edges))
		}
	}
}

func BenchmarkFig2Synthesize(b *testing.B) {
	sys, _ := New(Options{})
	g := sys.ExtractBehavior(extract.Fig2Text)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.SynthesizeQuery(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E2/E3: hunting the two demo attacks at increasing noise levels. The
// matched chain must always be exactly the injected attack.

func BenchmarkHuntDataLeakage(b *testing.B) {
	for _, benign := range []int{2000, 10000, 50000} {
		b.Run(fmt.Sprintf("benign=%d", benign), func(b *testing.B) {
			f := loadFixture(b, fmt.Sprintf("leak%d", benign), leakCfg(benign), extract.Fig2Text)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := f.sys.HuntQuery(f.query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("want 1 match, got %d", len(res.Rows))
				}
			}
			b.ReportMetric(float64(f.sys.NumEvents()), "events")
		})
	}
}

func BenchmarkHuntPasswordCrack(b *testing.B) {
	for _, benign := range []int{2000, 10000, 50000} {
		b.Run(fmt.Sprintf("benign=%d", benign), func(b *testing.B) {
			f := loadFixture(b, fmt.Sprintf("crack%d", benign), crackCfg(benign), extract.PasswordCrackText)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := f.sys.HuntQuery(f.query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) < 1 {
					b.Fatal("attack not found")
				}
			}
			b.ReportMetric(float64(f.sys.NumEvents()), "events")
		})
	}
}

// ---------------------------------------------------------------------------
// E4: NLP extraction accuracy and speed vs. baselines. Accuracy is
// reported as extra metrics (f1 per task) so the bench regenerates the
// paper's accuracy table alongside throughput.

func BenchmarkNLPExtraction(b *testing.B) {
	corpus := ctigen.Corpus(42, 20, 6)
	for _, ex := range []eval.Extractor{eval.Pipeline{}, eval.RegexCooccur{}, eval.IOCOnly{}} {
		b.Run(ex.Name(), func(b *testing.B) {
			var iocM, relM eval.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iocM, relM = eval.Score(ex, corpus)
			}
			b.ReportMetric(iocM.F1(), "ioc-f1")
			b.ReportMetric(relM.F1(), "rel-f1")
			b.ReportMetric(relM.Precision(), "rel-p")
			b.ReportMetric(relM.Recall(), "rel-r")
		})
	}
}

// ---------------------------------------------------------------------------
// E5: query execution efficiency — the scheduling/propagation ablation and
// data-size scaling.

func execModes() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"scheduled", Options{}},
		{"no-propagation", Options{DisablePropagation: true}},
		{"naive", Options{DisableScheduling: true, DisablePropagation: true}},
	}
}

func BenchmarkExecScheduledVsNaive(b *testing.B) {
	w := gen.Generate(leakCfg(10000))
	for _, mode := range execModes() {
		b.Run(mode.name, func(b *testing.B) {
			sys, err := New(mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.IngestRecords(w.Records); err != nil {
				b.Fatal(err)
			}
			g := sys.ExtractBehavior(extract.Fig2Text)
			q, _, err := sys.SynthesizeQuery(g, nil)
			if err != nil {
				b.Fatal(err)
			}
			var fetched int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sys.HuntQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatal("attack not found")
				}
				fetched = res.Stats.RowsFetched
			}
			b.ReportMetric(float64(fetched), "rows-fetched")
		})
	}
}

func BenchmarkExecScaling(b *testing.B) {
	for _, benign := range []int{2000, 10000, 50000} {
		b.Run(fmt.Sprintf("events=%d", benign), func(b *testing.B) {
			f := loadFixture(b, fmt.Sprintf("leak%d", benign), leakCfg(benign), extract.Fig2Text)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.sys.HuntQuery(f.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecPathPattern measures the graph-backend path search used by
// the advanced TBQL syntax.
func BenchmarkExecPathPattern(b *testing.B) {
	f := loadFixture(b, "leak10k", leakCfg(10000), "")
	q, err := f.sys.ParseQuery(`proc p["%/usr/sbin/apache2%"] ~>(1~4)[read] file f["%/etc/passwd%"] as e1
return distinct p, f`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.sys.HuntQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("path not found")
		}
	}
}

// ---------------------------------------------------------------------------
// E6: Causality Preserved Reduction on bursty event streams.

func BenchmarkCPRReduction(b *testing.B) {
	for _, burst := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			// Synthesize a stream where each (subject, object) pair emits
			// `burst` back-to-back events per interaction.
			rng := rand.New(rand.NewSource(3))
			var events []*audit.Event
			var ts int64
			for i := 0; i < 20000/burst; i++ {
				src := int64(1 + rng.Intn(50))
				dst := int64(100 + rng.Intn(200))
				for j := 0; j < burst; j++ {
					ts += 10
					events = append(events, &audit.Event{
						ID: int64(len(events) + 1), SrcID: src, DstID: dst,
						Op: audit.OpWrite, StartTime: ts, EndTime: ts + 5, Amount: 64,
					})
				}
			}
			var stats provenance.CPRStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats = provenance.Reduce(events)
			}
			b.ReportMetric(stats.ReductionFactor(), "reduction-x")
		})
	}
}

// ---------------------------------------------------------------------------
// E7: query conciseness — TBQL source size vs. the compiled SQL/Cypher the
// analyst would otherwise write by hand (the paper's motivation for TBQL).

func BenchmarkQueryConciseness(b *testing.B) {
	f := loadFixture(b, "leak2k", leakCfg(2000), extract.Fig2Text)
	var tbqlChars, dataChars int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.sys.HuntQuery(f.query)
		if err != nil {
			b.Fatal(err)
		}
		tbqlChars = len(f.query.String())
		dataChars = 0
		for _, dq := range res.Stats.DataQueries {
			dataChars += len(dq)
		}
	}
	b.ReportMetric(float64(tbqlChars), "tbql-chars")
	b.ReportMetric(float64(dataChars), "sql-chars")
	b.ReportMetric(float64(dataChars)/float64(tbqlChars), "verbosity-x")
}

// ---------------------------------------------------------------------------
// E8: ingestion throughput (parse + dual-backend store), with and without
// CPR.

func BenchmarkIngest(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		w := gen.Generate(gen.Config{Seed: 9, BenignEvents: n})
		for _, cpr := range []bool{false, true} {
			name := fmt.Sprintf("events=%d/cpr=%v", n, cpr)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sys, err := New(Options{CPR: cpr})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sys.IngestRecords(w.Records); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(w.Records))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E9: concurrent hunting — the service workload. BenchmarkHuntParallel
// drives the thread-safe stores with one hunter per GOMAXPROCS worker
// over a pre-ingested fixture; BenchmarkHuntCursor measures the
// streaming result API against materialized Result.Rows.

func BenchmarkHuntParallel(b *testing.B) {
	f := loadFixture(b, "leak10k-fig2", leakCfg(10000), extract.Fig2Text)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// b.Error, not b.Fatal: FailNow must not run in RunParallel
		// worker goroutines.
		for pb.Next() {
			res, err := f.sys.HuntQuery(f.query)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.Rows) != 1 {
				b.Error("attack not found")
				return
			}
		}
	})
}

func BenchmarkHuntCursor(b *testing.B) {
	f := loadFixture(b, "leak10k-fig2", leakCfg(10000), extract.Fig2Text)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := f.sys.HuntQueryCursor(f.query)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for cur.Next() {
			rows++
		}
		cur.Close()
		if rows != 1 {
			b.Fatal("attack not found")
		}
	}
}

// BenchmarkLogParse isolates the text-format parsing stage.
func BenchmarkLogParse(b *testing.B) {
	w := gen.Generate(gen.Config{Seed: 9, BenignEvents: 10000})
	lines := make([]string, len(w.Records))
	for i, r := range w.Records {
		lines[i] = audit.FormatRecord(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := audit.NewParser()
		for _, l := range lines {
			if _, err := p.ParseLine(l); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(lines))*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}
