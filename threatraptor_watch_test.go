package threatraptor

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/wal"
)

// drainWatch empties everything currently buffered on the watch (and,
// if the channel is closed, everything ever delivered), returning the
// rows joined per row.
func drainWatch(w *Watch) []string {
	var rows []string
	for {
		select {
		case b, ok := <-w.C():
			if !ok {
				return rows
			}
			for _, r := range b.Rows {
				rows = append(rows, strings.Join(r, "\x1f"))
			}
		default:
			return rows
		}
	}
}

// TestStandingHuntMatchesReexecution is the tentpole's equivalence
// property: for 120 random queries (multi-pattern joins, paths,
// temporal constraints, DISTINCT) registered at random points of a
// randomized ingest interleaving, the union of every delta batch a
// standing hunt delivers equals re-executing the query from scratch at
// the final epoch — on both an unsharded and a 4-shard store.
func TestStandingHuntMatchesReexecution(t *testing.T) {
	hosts := []string{"hostA", "hostB", "hostC"}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			sys, err := New(Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			queries := randomHuntQueries(120, 4242)
			watches := make([]*Watch, len(queries))
			register := func(lo, hi int) {
				for i := lo; i < hi && i < len(queries); i++ {
					q, err := sys.ParseQuery(queries[i])
					if err != nil {
						t.Fatalf("query %d: %v\n%s", i, err, queries[i])
					}
					w, err := sys.Watch(q, WatchOptions{Buffer: 64})
					if err != nil {
						t.Fatalf("watch %d: %v", i, err)
					}
					watches[i] = w
				}
			}

			// Random ingest interleaving across hosts and batches.
			type step struct {
				host  string
				batch int
			}
			var steps []step
			for b := 0; b < 4; b++ {
				for _, h := range hosts {
					steps = append(steps, step{h, b})
				}
			}
			rng := rand.New(rand.NewSource(int64(shards)))
			rng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })

			// A third of the watches register before any data (pure
			// incremental), a third mid-stream (backfill + increments), a
			// third near the end (mostly backfill).
			register(0, len(queries)/3)
			for si, stp := range steps {
				if _, err := sys.IngestRecords(durabilityBatch(stp.host, stp.batch, 40)); err != nil {
					t.Fatalf("ingest %s/%d: %v", stp.host, stp.batch, err)
				}
				sys.SyncWatches()
				switch si {
				case len(steps) / 3:
					register(len(queries)/3, 2*len(queries)/3)
				case 2 * len(steps) / 3:
					register(2*len(queries)/3, len(queries))
				}
			}
			sys.SyncWatches()

			for i, w := range watches {
				w.Close()
				got := drainWatch(w)
				sort.Strings(got)
				res, err := sys.Hunt(queries[i])
				if err != nil {
					t.Fatalf("re-execution %d: %v\n%s", i, err, queries[i])
				}
				want := sortedRows(res)
				if len(got) != len(want) {
					t.Fatalf("query %d: %d delta rows vs %d re-executed\n%s", i, len(got), len(want), queries[i])
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("query %d row %d: %q vs %q\n%s", i, j, got[j], want[j], queries[i])
					}
				}
			}
			if sys.WatchCount() != 0 {
				t.Fatalf("%d watches leaked after Close", sys.WatchCount())
			}
		})
	}
}

// TestStandingHuntCrashResume is the crash-interleaving variant: with
// fsync-always, crash mid-stream (no Close), restart from the WAL, and
// resume each watch from its last acknowledged token. The union of the
// batches acked before the crash and the batches after the resume must
// equal the final re-execution — no acked match lost, none duplicated.
func TestStandingHuntCrashResume(t *testing.T) {
	dir := t.TempDir()
	cfg := wal.Config{Shards: 2, Fsync: wal.Policy{Mode: wal.FsyncAlways}}
	hosts := []string{"hostA", "hostB", "hostC"}
	queries := randomHuntQueries(24, 777)

	sys, _ := durableSystem(t, dir, cfg, Options{Shards: 2})
	watches := make([]*Watch, len(queries))
	for i, src := range queries {
		q, err := sys.ParseQuery(src)
		if err != nil {
			t.Fatalf("query %d: %v\n%s", i, err, src)
		}
		if watches[i], err = sys.Watch(q, WatchOptions{Buffer: 64}); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < 2; b++ {
		for _, h := range hosts {
			if _, err := sys.IngestRecords(durabilityBatch(h, b, 30)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.SyncWatches()
	acked := make([][]string, len(queries))
	tokens := make([]string, len(queries))
	for i, w := range watches {
		acked[i] = drainWatch(w)
		tokens[i] = w.Resume()
	}
	// Crash: drop the System without Close. Fsync-always means every
	// acknowledged ingest — and so every consumed watermark — is durable.

	recovered, log2 := durableSystem(t, dir, cfg, Options{Shards: 2})
	defer log2.Close()
	resumed := make([]*Watch, len(queries))
	for i, src := range queries {
		q, err := recovered.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		if resumed[i], err = recovered.Watch(q, WatchOptions{Buffer: 64, Resume: tokens[i]}); err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
	}
	for b := 2; b < 4; b++ {
		for _, h := range hosts {
			if _, err := recovered.IngestRecords(durabilityBatch(h, b, 30)); err != nil {
				t.Fatal(err)
			}
		}
	}
	recovered.SyncWatches()
	for i, w := range resumed {
		w.Close()
		union := append(append([]string{}, acked[i]...), drainWatch(w)...)
		sort.Strings(union)
		res, err := recovered.Hunt(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		want := sortedRows(res)
		if len(union) != len(want) {
			t.Fatalf("query %d: acked∪resumed has %d rows, re-execution %d\n%s",
				i, len(union), len(want), queries[i])
		}
		for j := range want {
			if union[j] != want[j] {
				t.Fatalf("query %d row %d: %q vs %q (lost or duplicated across crash)\n%s",
					i, j, union[j], want[j], queries[i])
			}
		}
	}
}

// TestStandingHuntResumeRejectsAheadToken: a resume token minted on a
// store state the restarted store did not recover (acked batches lost,
// e.g. fsync=never) must be rejected, not silently skipped past.
func TestStandingHuntResumeRejectsAheadToken(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestRecords(durabilityBatch("hostA", 0, 20)); err != nil {
		t.Fatal(err)
	}
	q, err := sys.ParseQuery("proc p read file f as e1\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.Watch(q, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	token := w.Resume()
	w.Close()

	// A fresh, empty system stands in for a store that lost the commits.
	empty, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := empty.ParseQuery("proc p read file f as e1\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Watch(q2, WatchOptions{Resume: token}); err == nil {
		t.Fatal("resume token ahead of the store must be rejected")
	}
	// A token from a different query must be rejected too.
	q3, err := sys.ParseQuery("proc p write file f as e1\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Watch(q3, WatchOptions{Resume: token}); err == nil {
		t.Fatal("resume token of a different query must be rejected")
	}
}

// TestSlowSubscriberEvicted: a subscriber that stops draining is
// evicted once its buffer fills — the watch closes with
// ErrSlowSubscriber, already-buffered batches stay readable, and the
// ingest path keeps flowing.
func TestSlowSubscriberEvicted(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.ParseQuery("proc p read file f as e1\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.Watch(q, WatchOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Non-DISTINCT query: every batch's events produce fresh match rows,
	// so the second delivery finds the 1-slot buffer still full.
	if _, err := sys.IngestRecords(durabilityBatch("hostA", 0, 10)); err != nil {
		t.Fatal(err)
	}
	sys.SyncWatches()
	if _, err := sys.IngestRecords(durabilityBatch("hostA", 1, 10)); err != nil {
		t.Fatal(err)
	}
	sys.SyncWatches()

	if sys.WatchCount() != 0 {
		t.Fatalf("evicted watch still registered (%d)", sys.WatchCount())
	}
	if rows := drainWatch(w); len(rows) == 0 {
		t.Fatal("buffered batch should remain readable after eviction")
	}
	if _, ok := <-w.C(); ok {
		t.Fatal("channel should be closed after eviction")
	}
	if !errors.Is(w.Err(), ErrSlowSubscriber) {
		t.Fatalf("Err = %v, want ErrSlowSubscriber", w.Err())
	}
	if _, _, _, evicted := sys.WatchTotals(); evicted != 1 {
		t.Fatalf("evicted counter = %d, want 1", evicted)
	}
	// Ingest continues unimpeded with the dead watch gone.
	if _, err := sys.IngestRecords(durabilityBatch("hostA", 2, 10)); err != nil {
		t.Fatal(err)
	}
	w.Close() // idempotent no-op after eviction
}

// TestWatchConcurrencyRace churns watch registration, draining, close,
// and slow-subscriber eviction under 4-way concurrent per-host ingest.
// Run with -race; the invariant checks are deliberately loose — the
// point is the interleaving.
func TestWatchConcurrencyRace(t *testing.T) {
	sys, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for gi, host := range []string{"hostA", "hostB", "hostC", "hostD"} {
		wg.Add(1)
		go func(gi int, host string) {
			defer wg.Done()
			for b := 0; b < 6; b++ {
				if _, err := sys.IngestRecords(durabilityBatch(host, b, 15)); err != nil {
					t.Errorf("ingest %s/%d: %v", host, b, err)
					return
				}
			}
		}(gi, host)
	}
	queries := randomHuntQueries(4, 31)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			q, err := sys.ParseQuery(queries[k])
			if err != nil {
				t.Errorf("parse: %v", err)
				return
			}
			for n := 0; n < 8; n++ {
				w, err := sys.Watch(q, WatchOptions{Buffer: 2})
				if err != nil {
					t.Errorf("watch: %v", err)
					return
				}
				// Drain a little, then walk away: some watches close
				// cleanly, some get evicted mid-delivery.
				drainWatch(w)
				if n%2 == 0 {
					sys.SyncWatches()
				}
				w.Close()
				drainWatch(w)
			}
		}(k)
	}
	wg.Wait()
	sys.SyncWatches()
	if sys.WatchCount() != 0 {
		t.Fatalf("%d watches leaked", sys.WatchCount())
	}
}

// BenchmarkStandingHunts compares the per-commit cost of keeping N
// standing hunts current: incrementally (delta evaluation) versus
// naively re-executing every query after every commit. The acceptance
// bar is incremental ≥5× the naive matches/sec.
func BenchmarkStandingHunts(b *testing.B) {
	const nQueries = 20
	hosts := []string{"hostA", "hostB", "hostC"}
	// Non-distinct projections: every commit's matching events surface as
	// new rows, so "new matches per second" is a meaningful rate on both
	// sides (a DISTINCT hunt converges and its delta goes quiet).
	queries := randomHuntQueries(nQueries, 88)
	for i, q := range queries {
		queries[i] = strings.Replace(q, "return distinct ", "return ", 1)
	}
	preload := func(b *testing.B) *System {
		b.Helper()
		sys, err := New(Options{})
		if err != nil {
			b.Fatal(err)
		}
		for batch := 0; batch < 6; batch++ {
			for _, h := range hosts {
				if _, err := sys.IngestRecords(durabilityBatch(h, batch, 40)); err != nil {
					b.Fatal(err)
				}
			}
		}
		return sys
	}

	b.Run("incremental", func(b *testing.B) {
		sys := preload(b)
		watches := make([]*Watch, nQueries)
		for i, src := range queries {
			q, err := sys.ParseQuery(src)
			if err != nil {
				b.Fatal(err)
			}
			if watches[i], err = sys.Watch(q, WatchOptions{Buffer: 4}); err != nil {
				b.Fatal(err)
			}
		}
		sys.SyncWatches()
		var matches int64
		for _, w := range watches {
			matches += int64(len(drainWatch(w))) // consume the backfill untimed
		}
		matches = 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.IngestRecords(durabilityBatch(hosts[i%len(hosts)], 100+i, 40)); err != nil {
				b.Fatal(err)
			}
			sys.SyncWatches()
			for _, w := range watches {
				matches += int64(len(drainWatch(w)))
			}
		}
		b.StopTimer()
		if b.Elapsed() > 0 {
			b.ReportMetric(float64(matches)/b.Elapsed().Seconds(), "matches/s")
		}
		for _, w := range watches {
			w.Close()
		}
	})

	b.Run("naive", func(b *testing.B) {
		sys := preload(b)
		parsed := make([]*Query, nQueries)
		for i, src := range queries {
			q, err := sys.ParseQuery(src)
			if err != nil {
				b.Fatal(err)
			}
			parsed[i] = q
		}
		// Prime the plan cache so the comparison is evaluation cost, not
		// first-compile cost, and record each query's baseline count: the
		// naive consumer surfaces a new match by re-executing and diffing
		// against what it already reported, so only growth counts.
		prev := make([]int, nQueries)
		for i, q := range parsed {
			res, err := sys.HuntQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			prev[i] = len(res.Rows)
		}
		var matches int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.IngestRecords(durabilityBatch(hosts[i%len(hosts)], 100+i, 40)); err != nil {
				b.Fatal(err)
			}
			for j, q := range parsed {
				res, err := sys.HuntQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				matches += int64(len(res.Rows) - prev[j])
				prev[j] = len(res.Rows)
			}
		}
		b.StopTimer()
		if b.Elapsed() > 0 {
			b.ReportMetric(float64(matches)/b.Elapsed().Seconds(), "matches/s")
		}
	})
}
