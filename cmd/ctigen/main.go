// Command ctigen generates a labelled corpus of synthetic OSCTI reports
// for NLP accuracy evaluation.
//
// Usage:
//
//	ctigen -n 20 -steps 6 -seed 3
//
// Each report is printed with its ground-truth IOCs and relation
// triplets, separated by "---".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ctigen"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "rng seed")
		n     = flag.Int("n", 10, "number of reports")
		steps = flag.Int("steps", 5, "relation steps per report")
		bare  = flag.Bool("bare", false, "print only report texts (no labels)")
	)
	flag.Parse()

	for i, rep := range ctigen.Corpus(*seed, *n, *steps) {
		if i > 0 {
			fmt.Println("---")
		}
		fmt.Println(rep.Text)
		if *bare {
			continue
		}
		fmt.Fprintln(os.Stdout)
		fmt.Println("# IOCs:")
		for _, ioc := range rep.IOCs {
			fmt.Printf("#   %s\n", ioc)
		}
		fmt.Println("# Relations:")
		for _, tr := range rep.Triplets {
			fmt.Printf("#   %s -%s-> %s\n", tr.Subj, tr.Verb, tr.Obj)
		}
	}
}
