package main

import (
	"testing"
	"time"
)

func TestSlowHuntConfig(t *testing.T) {
	// The flag's 0 means "disabled", which service.Config spells as
	// negative — passing 0 through would silently re-enable the default.
	if got := slowHuntConfig(0); got >= 0 {
		t.Fatalf("slowHuntConfig(0) = %v, want negative (disabled)", got)
	}
	if got := slowHuntConfig(2 * time.Second); got != 2*time.Second {
		t.Fatalf("slowHuntConfig(2s) = %v, want 2s", got)
	}
}

func TestCacheSizeConfig(t *testing.T) {
	if got := cacheSizeConfig(0); got >= 0 {
		t.Fatalf("cacheSizeConfig(0) = %d, want negative (disabled)", got)
	}
	if got := cacheSizeConfig(64); got != 64 {
		t.Fatalf("cacheSizeConfig(64) = %d, want 64", got)
	}
}
