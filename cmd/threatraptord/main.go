// Command threatraptord runs ThreatRaptor as a long-lived HTTP daemon:
// one shared System serving concurrent ingestion and hunting clients.
//
// Endpoints (see cmd/threatraptord/README.md for examples):
//
//	POST   /ingest       stream Sysdig-style audit log lines into the stores
//	POST   /hunt         execute TBQL source; returns the first page and,
//	                     when more rows remain, a server-side cursor id
//	GET    /hunt/next    page a registered cursor's pinned epoch snapshot
//	DELETE /hunt/cursor  close a registered cursor explicitly
//	GET    /explain      compile and score a TBQL query without executing it
//	POST   /watch        register a standing hunt evaluated on every ingest
//	                     commit's delta (optionally with a webhook sink)
//	GET    /watch/stream attach to a standing hunt and stream its match
//	                     batches as SSE or NDJSON frames
//	DELETE /watch        unregister a standing hunt
//	GET    /stats        store sizes, cursor registry, request counters
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/service"
	"repro/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8181", "listen address")
		cpr        = flag.Bool("cpr", false, "apply Causality Preserved Reduction on ingest")
		lenient    = flag.Bool("lenient", false, "skip malformed log lines instead of failing the batch")
		maxHops    = flag.Int("max-path-hops", 0, "cap for unbounded TBQL path patterns (0 = default)")
		maxProp    = flag.Int("max-propagated-ids", 0, "cap on propagated entity-ID set size (0 = default 25600); drops count as propagations_skipped in /stats")
		planCache  = flag.Int("plan-cache", service.DefaultPlanCacheSize, "cross-hunt prepared-plan cache capacity in plan templates (0 = disabled); hits/misses surface in /stats")
		shards     = flag.Int("shards", 1, "per-host store shards: ingest for different hosts loads in parallel and hunts fan out across shards (1 = unsharded)")
		cursorTTL  = flag.Duration("cursor-ttl", service.DefaultCursorTTL, "idle lifetime of a server-side hunt cursor; expired cursors answer 410")
		maxCursors = flag.Int("max-cursors", service.DefaultMaxCursors, "cap on open server-side cursors; beyond it the least-recently-used is evicted")
		ingestQ    = flag.Int("ingest-queue", service.MaxConcurrentIngests, "concurrent /ingest batches buffered before shedding 429 + Retry-After")
		maxPage    = flag.Int("max-page", service.DefaultMaxPage, "maximum per-request page size for /hunt and /hunt/next; larger limits answer 400")
		noCostOpt  = flag.Bool("no-cost-optimizer", false, "disable cost-based pattern scheduling and fetch caps; hunts use static pruning-score order")
		drainWait  = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		dataDir    = flag.String("data-dir", "", "durability directory (WAL + segment snapshots); empty runs memory-only and a restart loses everything")
		fsync      = flag.String("fsync", wal.DefaultFsyncInterval.String(), "WAL durability: always (fsync per ingest ack, group-committed), never, or a batching interval like 100ms")
		segEvery   = flag.Duration("segment-interval", time.Minute, "how often pending commits flush into immutable segment snapshots and the WAL rotates (0 disables; WAL grows until shutdown)")
		retention  = flag.Duration("retention", 0, "age out events older than this at segment compaction (0 keeps everything)")
		ingestChnk = flag.Int("ingest-chunk", threatraptor.DefaultIngestChunk, "records per serialized ingest commit; giant batches split so one cannot monopolize the ingest lock (negative disables chunking)")
		queryCache = flag.Int("query-cache", service.DefaultQueryCacheSize, "TBQL text -> analyzed-query cache capacity for /hunt (0 = disabled); hits/misses surface in /stats")
		watchTTL   = flag.Duration("watch-ttl", service.DefaultWatchTTL, "idle lifetime of a standing hunt with no attached consumer; expired watches answer 410")
		maxWatches = flag.Int("max-watches", service.DefaultMaxWatches, "cap on registered standing hunts; registrations beyond it answer 429")
		watchBuf   = flag.Int("watch-buffer", 0, "per-watch delivery buffer in batches (0 = default); a subscriber further behind is evicted rather than blocking ingest")
	)
	flag.Parse()

	// Validate up front with actionable messages instead of panicking or
	// silently misbehaving deep in the stack.
	switch {
	case *shards < 1:
		log.Fatalf("threatraptord: -shards must be >= 1 (got %d); use 1 for an unsharded store", *shards)
	case *cursorTTL <= 0:
		log.Fatalf("threatraptord: -cursor-ttl must be positive (got %s); cursors need a finite idle lifetime", *cursorTTL)
	case *maxCursors < 1:
		log.Fatalf("threatraptord: -max-cursors must be >= 1 (got %d)", *maxCursors)
	case *ingestQ < 1:
		log.Fatalf("threatraptord: -ingest-queue must be >= 1 (got %d); at least one batch must be ingestible", *ingestQ)
	case *drainWait <= 0:
		log.Fatalf("threatraptord: -drain must be positive (got %s)", *drainWait)
	case *maxHops < 0:
		log.Fatalf("threatraptord: -max-path-hops must be >= 0 (got %d)", *maxHops)
	case *maxProp < 0:
		log.Fatalf("threatraptord: -max-propagated-ids must be >= 0 (got %d)", *maxProp)
	case *planCache < 0:
		log.Fatalf("threatraptord: -plan-cache must be >= 0 (got %d); use 0 to disable plan caching", *planCache)
	case *maxPage < 1:
		log.Fatalf("threatraptord: -max-page must be >= 1 (got %d)", *maxPage)
	case *segEvery < 0:
		log.Fatalf("threatraptord: -segment-interval must be >= 0 (got %s); 0 disables segment snapshots", *segEvery)
	case *retention < 0:
		log.Fatalf("threatraptord: -retention must be >= 0 (got %s); 0 keeps everything", *retention)
	case *queryCache < 0:
		log.Fatalf("threatraptord: -query-cache must be >= 0 (got %d); use 0 to disable query caching", *queryCache)
	case *watchTTL <= 0:
		log.Fatalf("threatraptord: -watch-ttl must be positive (got %s); unconsumed standing hunts need a finite lifetime", *watchTTL)
	case *maxWatches < 1:
		log.Fatalf("threatraptord: -max-watches must be >= 1 (got %d)", *maxWatches)
	case *watchBuf < 0:
		log.Fatalf("threatraptord: -watch-buffer must be >= 0 (got %d); use 0 for the default buffer", *watchBuf)
	}

	// The Options field treats 0 as "use the default"; the flag treats 0
	// as "disabled", which Options spells as a negative capacity.
	planCacheSize := *planCache
	if planCacheSize == 0 {
		planCacheSize = -1
	}
	queryCacheSize := *queryCache
	if queryCacheSize == 0 {
		queryCacheSize = -1
	}

	// With a data dir, open the durability log; threatraptor.New replays
	// it (segments + WAL tail) before the daemon serves anything.
	var durLog *wal.Log
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			log.Fatalf("threatraptord: %v", err)
		}
		durLog, err = wal.Open(*dataDir, wal.Config{
			Fsync:           policy,
			SegmentInterval: *segEvery,
			Retention:       *retention,
			Shards:          *shards,
		})
		if err != nil {
			log.Fatalf("threatraptord: %v", err)
		}
	}

	sys, err := threatraptor.New(threatraptor.Options{
		CPR:                  *cpr,
		LenientParsing:       *lenient,
		MaxPathHops:          *maxHops,
		MaxPropagatedIDs:     *maxProp,
		PlanCacheSize:        planCacheSize,
		Shards:               *shards,
		DisableCostOptimizer: *noCostOpt,
		WAL:                  durLog,
		IngestChunk:          *ingestChnk,
	})
	if err != nil {
		log.Fatalf("threatraptord: %v", err)
	}
	if durLog != nil {
		rec := sys.Recovery()
		log.Printf("threatraptord: recovered %s to epoch %d (%d commits, %d segment set(s), %d WAL record(s), %d dropped tail byte(s), clean=%v)",
			*dataDir, rec.Epoch, rec.Commits, rec.SegmentSets, rec.WALRecords, rec.DroppedBytes, rec.Clean)
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: service.NewWithConfig(sys, service.Config{
			CursorTTL:   *cursorTTL,
			MaxCursors:  *maxCursors,
			IngestQueue: *ingestQ,
			MaxPage:     *maxPage,
			QueryCache:  queryCacheSize,
			WatchTTL:    *watchTTL,
			MaxWatches:  *maxWatches,
			WatchBuffer: *watchBuf,
			WAL:         durLog,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		log.Printf("threatraptord: listening on %s (%d store shard(s))", *addr, sys.NumShards())
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		log.Fatalf("threatraptord: %v", err)
	case <-ctx.Done():
	}

	log.Printf("threatraptord: shutting down (draining up to %s)", *drainWait)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("threatraptord: forced shutdown: %v", err)
		srv.Close()
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("threatraptord: %v", err)
	}
	// With HTTP drained no ingest is in flight: flush and fsync the WAL
	// tail and write the clean-shutdown marker, so the next start skips
	// torn-tail scanning.
	if durLog != nil {
		if err := durLog.Close(); err != nil {
			log.Printf("threatraptord: closing durability log: %v", err)
		}
	}
	log.Printf("threatraptord: stopped with %d events / %d entities stored",
		sys.NumEvents(), sys.NumEntities())
}
