// Command threatraptord runs ThreatRaptor as a long-lived HTTP daemon:
// one shared System serving concurrent ingestion and hunting clients.
//
// Endpoints (see cmd/threatraptord/README.md for examples):
//
//	POST   /ingest       stream Sysdig-style audit log lines into the stores
//	POST   /hunt         execute TBQL source; returns the first page and,
//	                     when more rows remain, a server-side cursor id
//	GET    /hunt/next    page a registered cursor's pinned epoch snapshot
//	DELETE /hunt/cursor  close a registered cursor explicitly
//	GET    /explain      compile and score a TBQL query without executing it
//	POST   /watch        register a standing hunt evaluated on every ingest
//	                     commit's delta (optionally with a webhook sink)
//	GET    /watch/stream attach to a standing hunt and stream its match
//	                     batches as SSE or NDJSON frames
//	DELETE /watch        unregister a standing hunt
//	GET    /stats        store sizes, cursor registry, request counters
//	GET    /metrics      Prometheus text exposition (latency histograms,
//	                     registry occupancy, durability counters)
//	GET    /debug/hunts  in-flight executions, open cursors, active watches
//	DELETE /debug/hunts/<request-id>
//	                     kill switch: cancel a live hunt by its request id
//
// Hunt executions are governed by -hunt-timeout (504 past the deadline),
// -max-join-rows (422 past the join budget), and -max-hunts (429 beyond
// the admission cap); a client disconnect cancels its hunt mid-wave.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting. Logging is structured (log/slog, text to
// stderr); every HTTP response carries an X-Request-Id that also appears
// in trace spans and slow-hunt log lines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/wal"
)

// slowHuntConfig maps the -slow-hunt flag to service.Config.SlowHunt:
// the flag spells "disabled" as 0, the Config spells it as negative
// (its 0 means "use the default").
func slowHuntConfig(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

// cacheSizeConfig maps a cache-capacity flag to its Options field: the
// flag treats 0 as "disabled", which Options spells as a negative
// capacity (its 0 means "use the default").
func cacheSizeConfig(n int) int {
	if n == 0 {
		return -1
	}
	return n
}

func main() {
	var (
		addr       = flag.String("addr", ":8181", "listen address")
		cpr        = flag.Bool("cpr", false, "apply Causality Preserved Reduction on ingest")
		lenient    = flag.Bool("lenient", false, "skip malformed log lines instead of failing the batch")
		maxHops    = flag.Int("max-path-hops", 0, "cap for unbounded TBQL path patterns (0 = default)")
		maxProp    = flag.Int("max-propagated-ids", 0, "cap on propagated entity-ID set size (0 = default 25600); drops count as propagations_skipped in /stats")
		planCache  = flag.Int("plan-cache", service.DefaultPlanCacheSize, "cross-hunt prepared-plan cache capacity in plan templates (0 = disabled); hits/misses surface in /stats")
		shards     = flag.Int("shards", 1, "per-host store shards: ingest for different hosts loads in parallel and hunts fan out across shards (1 = unsharded)")
		cursorTTL  = flag.Duration("cursor-ttl", service.DefaultCursorTTL, "idle lifetime of a server-side hunt cursor; expired cursors answer 410")
		maxCursors = flag.Int("max-cursors", service.DefaultMaxCursors, "cap on open server-side cursors; beyond it the least-recently-used is evicted")
		ingestQ    = flag.Int("ingest-queue", service.MaxConcurrentIngests, "concurrent /ingest batches buffered before shedding 429 + Retry-After")
		maxPage    = flag.Int("max-page", service.DefaultMaxPage, "maximum per-request page size for /hunt and /hunt/next; larger limits answer 400")
		noCostOpt  = flag.Bool("no-cost-optimizer", false, "disable cost-based pattern scheduling and fetch caps; hunts use static pruning-score order")
		drainWait  = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		dataDir    = flag.String("data-dir", "", "durability directory (WAL + segment snapshots); empty runs memory-only and a restart loses everything")
		fsync      = flag.String("fsync", wal.DefaultFsyncInterval.String(), "WAL durability: always (fsync per ingest ack, group-committed), never, or a batching interval like 100ms")
		segEvery   = flag.Duration("segment-interval", time.Minute, "how often pending commits flush into immutable segment snapshots and the WAL rotates (0 disables; WAL grows until shutdown)")
		retention  = flag.Duration("retention", 0, "age out events older than this at segment compaction (0 keeps everything)")
		ingestChnk = flag.Int("ingest-chunk", threatraptor.DefaultIngestChunk, "records per serialized ingest commit; giant batches split so one cannot monopolize the ingest lock (negative disables chunking)")
		queryCache = flag.Int("query-cache", service.DefaultQueryCacheSize, "TBQL text -> analyzed-query cache capacity for /hunt (0 = disabled); hits/misses surface in /stats")
		watchTTL   = flag.Duration("watch-ttl", service.DefaultWatchTTL, "idle lifetime of a standing hunt with no attached consumer; expired watches answer 410")
		maxWatches = flag.Int("max-watches", service.DefaultMaxWatches, "cap on registered standing hunts; registrations beyond it answer 429")
		watchBuf   = flag.Int("watch-buffer", 0, "per-watch delivery buffer in batches (0 = default); a subscriber further behind is evicted rather than blocking ingest")
		slowHunt   = flag.Duration("slow-hunt", service.DefaultSlowHunt, "latency threshold above which a hunt logs a structured slow-hunt line with its span breakdown (0 disables)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; profiles can reveal heap contents)")
		noTrace    = flag.Bool("no-trace", false, "disable per-hunt pipeline tracing; hunt and explain responses omit the span tree")
		huntTO     = flag.Duration("hunt-timeout", 0, "per-request execution deadline for /hunt, /hunt/next, and /explain; past it hunts answer 504 with the partial span breakdown (0 disables)")
		maxJoinRow = flag.Int("max-join-rows", 0, "cap on join candidate rows one hunt may examine; past it the hunt answers 422 naming the budget (0 disables)")
		maxHunts   = flag.Int("max-hunts", 0, "concurrent hunt executions admitted before shedding 429 + Retry-After (0 = unlimited)")
		readTO     = flag.Duration("read-timeout", 5*time.Minute, "whole-request read deadline; bounds how long a trickling client can hold a connection (0 disables)")
		idleTO     = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle deadline before an inactive connection is closed (0 disables)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	fatal := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	// Validate up front with actionable messages instead of panicking or
	// silently misbehaving deep in the stack.
	switch {
	case *shards < 1:
		fatal("-shards must be >= 1 (got %d); use 1 for an unsharded store", *shards)
	case *cursorTTL <= 0:
		fatal("-cursor-ttl must be positive (got %s); cursors need a finite idle lifetime", *cursorTTL)
	case *maxCursors < 1:
		fatal("-max-cursors must be >= 1 (got %d)", *maxCursors)
	case *ingestQ < 1:
		fatal("-ingest-queue must be >= 1 (got %d); at least one batch must be ingestible", *ingestQ)
	case *drainWait <= 0:
		fatal("-drain must be positive (got %s)", *drainWait)
	case *maxHops < 0:
		fatal("-max-path-hops must be >= 0 (got %d)", *maxHops)
	case *maxProp < 0:
		fatal("-max-propagated-ids must be >= 0 (got %d)", *maxProp)
	case *planCache < 0:
		fatal("-plan-cache must be >= 0 (got %d); use 0 to disable plan caching", *planCache)
	case *maxPage < 1:
		fatal("-max-page must be >= 1 (got %d)", *maxPage)
	case *segEvery < 0:
		fatal("-segment-interval must be >= 0 (got %s); 0 disables segment snapshots", *segEvery)
	case *retention < 0:
		fatal("-retention must be >= 0 (got %s); 0 keeps everything", *retention)
	case *queryCache < 0:
		fatal("-query-cache must be >= 0 (got %d); use 0 to disable query caching", *queryCache)
	case *watchTTL <= 0:
		fatal("-watch-ttl must be positive (got %s); unconsumed standing hunts need a finite lifetime", *watchTTL)
	case *maxWatches < 1:
		fatal("-max-watches must be >= 1 (got %d)", *maxWatches)
	case *watchBuf < 0:
		fatal("-watch-buffer must be >= 0 (got %d); use 0 for the default buffer", *watchBuf)
	case *slowHunt < 0:
		fatal("-slow-hunt must be >= 0 (got %s); use 0 to disable the slow-hunt log", *slowHunt)
	case *huntTO < 0:
		fatal("-hunt-timeout must be >= 0 (got %s); use 0 to disable the deadline", *huntTO)
	case *maxJoinRow < 0:
		fatal("-max-join-rows must be >= 0 (got %d); use 0 to disable the budget", *maxJoinRow)
	case *maxHunts < 0:
		fatal("-max-hunts must be >= 0 (got %d); use 0 for unlimited concurrency", *maxHunts)
	case *readTO < 0:
		fatal("-read-timeout must be >= 0 (got %s); use 0 to disable it", *readTO)
	case *idleTO < 0:
		fatal("-idle-timeout must be >= 0 (got %s); use 0 to disable it", *idleTO)
	}

	// One histogram bundle shared by every layer: the WAL observes
	// append/fsync, the System observes commit and standing-hunt
	// latencies, the HTTP layer observes hunt first-page latency — and
	// GET /metrics exposes all of it.
	metrics := obs.NewMetrics()

	// With a data dir, open the durability log; threatraptor.New replays
	// it (segments + WAL tail) before the daemon serves anything.
	var durLog *wal.Log
	if *dataDir != "" {
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			fatal("%v", err)
		}
		durLog, err = wal.Open(*dataDir, wal.Config{
			Fsync:           policy,
			SegmentInterval: *segEvery,
			Retention:       *retention,
			Shards:          *shards,
			Metrics:         metrics,
		})
		if err != nil {
			fatal("%v", err)
		}
	}

	sys, err := threatraptor.New(threatraptor.Options{
		CPR:                  *cpr,
		LenientParsing:       *lenient,
		MaxPathHops:          *maxHops,
		MaxPropagatedIDs:     *maxProp,
		PlanCacheSize:        cacheSizeConfig(*planCache),
		Shards:               *shards,
		DisableCostOptimizer: *noCostOpt,
		WAL:                  durLog,
		IngestChunk:          *ingestChnk,
		MaxJoinRows:          *maxJoinRow,
		Metrics:              metrics,
		DisableTracing:       *noTrace,
	})
	if err != nil {
		fatal("%v", err)
	}
	if durLog != nil {
		rec := sys.Recovery()
		logger.Info("recovered durability log",
			"dir", *dataDir,
			"epoch", rec.Epoch,
			"commits", rec.Commits,
			"segment_sets", rec.SegmentSets,
			"wal_records", rec.WALRecords,
			"dropped_tail_bytes", rec.DroppedBytes,
			"clean", rec.Clean,
		)
	}

	svc := service.NewWithConfig(sys, service.Config{
		CursorTTL:   *cursorTTL,
		MaxCursors:  *maxCursors,
		IngestQueue: *ingestQ,
		MaxPage:     *maxPage,
		QueryCache:  cacheSizeConfig(*queryCache),
		WatchTTL:    *watchTTL,
		MaxWatches:  *maxWatches,
		WatchBuffer: *watchBuf,
		WAL:         durLog,
		SlowHunt:    slowHuntConfig(*slowHunt),
		Pprof:       *pprofOn,
		NoTrace:     *noTrace,
		Logger:      logger,
		Metrics:     metrics,
		HuntTimeout: *huntTO,
		MaxHunts:    *maxHunts,
	})

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc,
		// Slowloris defenses: headers must arrive promptly, whole bodies
		// within the read timeout, and idle keep-alive connections are
		// reaped. No WriteTimeout — /watch/stream responses are unbounded
		// by design (the stream handler also clears its read deadline).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "shards", sys.NumShards(), "pprof", *pprofOn, "tracing", !*noTrace)
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		fatal("%v", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", *drainWait)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("forced shutdown", "err", err)
		srv.Close()
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("server exit", "err", err)
	}
	// Release the service's background consumers (webhook pumps mid-retry
	// against a dead sink) so shutdown never waits out their backoff.
	svc.Close()
	// With HTTP drained no ingest is in flight: flush and fsync the WAL
	// tail and write the clean-shutdown marker, so the next start skips
	// torn-tail scanning.
	if durLog != nil {
		if err := durLog.Close(); err != nil {
			logger.Error("closing durability log", "err", err)
		}
	}
	logger.Info("stopped", "events", sys.NumEvents(), "entities", sys.NumEntities())
}
