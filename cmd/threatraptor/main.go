// Command threatraptor is the end-to-end CLI for the ThreatRaptor system:
// OSCTI-driven threat hunting over system audit logs.
//
// Subcommands:
//
//	demo      run the paper's full demo scenario in-process
//	extract   OSCTI report -> threat behavior graph
//	synth     OSCTI report -> synthesized TBQL query
//	hunt      OSCTI report (or TBQL query) + audit logs -> matches
//	explain   show compiled data queries, pruning scores, schedule
//	eval-nlp  NLP extraction accuracy vs. baselines (experiment E4)
//
// Hunts execute on the prepared-plan pipeline: each pattern's data
// query is compiled once into a parameterized prepared statement
// (propagated entity-ID sets are bound parameters, not rendered
// IN-list text), and the data-query text `explain` prints is rendered
// on demand from those plans. A long-lived deployment of the same
// engine (cmd/threatraptord) additionally caches plans across hunts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/audit/gen"
	"repro/internal/ctigen"
	"repro/internal/eval"
	"repro/internal/extract"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "demo":
		err = runDemo(args)
	case "extract":
		err = runExtract(args)
	case "synth":
		err = runSynth(args)
	case "hunt":
		err = runHunt(args)
	case "explain":
		err = runExplain(args)
	case "eval-nlp":
		err = runEvalNLP(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "threatraptor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: threatraptor <command> [flags]

commands:
  demo      run the paper's demo scenario end to end (no files needed)
  extract   -report FILE            print the threat behavior graph
  synth     -report FILE [-paths]   print the synthesized TBQL query
  hunt      -logs FILE (-report FILE | -query FILE) [-cpr] [-shards N]
  explain   -logs FILE (-report FILE | -query FILE) [-shards N]
  eval-nlp  [-n 20] [-steps 6]      NLP accuracy vs. baselines`)
	os.Exit(2)
}

func readFileFlag(path, what string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("missing -%s", what)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func newLoadedSystem(logPath string, cpr bool, shards int) (*threatraptor.System, error) {
	if shards < 1 {
		return nil, fmt.Errorf("-shards must be >= 1 (got %d); use 1 for an unsharded store", shards)
	}
	sys, err := threatraptor.New(threatraptor.Options{CPR: cpr, Shards: shards})
	if err != nil {
		return nil, err
	}
	f, err := os.Open(logPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	stats, err := sys.IngestLogs(f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "ingested %d events (%d stored), %d entities\n",
		stats.EventsIn, stats.EventsStored, stats.Entities)
	return sys, nil
}

func runExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	report := fs.String("report", "", "OSCTI report file")
	fs.Parse(args)
	text, err := readFileFlag(*report, "report")
	if err != nil {
		return err
	}
	g := extract.Extract(text)
	fmt.Printf("threat behavior graph: %d nodes, %d edges\n\n", len(g.Nodes), len(g.Edges))
	fmt.Print(g.String())
	return nil
}

func runSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	report := fs.String("report", "", "OSCTI report file")
	paths := fs.Bool("paths", false, "synthesize variable-length path patterns")
	pathMax := fs.Int("path-max", 4, "maximum hops for path patterns")
	fs.Parse(args)
	text, err := readFileFlag(*report, "report")
	if err != nil {
		return err
	}
	g := extract.Extract(text)
	var plan *threatraptor.SynthPlan
	if *paths {
		plan = &threatraptor.SynthPlan{UsePaths: true, PathMin: 1, PathMax: *pathMax}
	}
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		return err
	}
	q, rep, err := sys.SynthesizeQuery(g, plan)
	if err != nil {
		return err
	}
	fmt.Println(q.String())
	for _, d := range rep.DroppedNodes {
		fmt.Fprintf(os.Stderr, "# screened out (type not audited): %s\n", d)
	}
	for _, d := range rep.DroppedEdges {
		fmt.Fprintf(os.Stderr, "# dropped (no operation rule): %s\n", d)
	}
	return nil
}

func loadQuery(sys *threatraptor.System, reportPath, queryPath string) (*threatraptor.Query, error) {
	switch {
	case reportPath != "":
		text, err := readFileFlag(reportPath, "report")
		if err != nil {
			return nil, err
		}
		g := sys.ExtractBehavior(text)
		q, _, err := sys.SynthesizeQuery(g, nil)
		return q, err
	case queryPath != "":
		src, err := readFileFlag(queryPath, "query")
		if err != nil {
			return nil, err
		}
		return sys.ParseQuery(src)
	default:
		return nil, fmt.Errorf("need -report or -query")
	}
}

func runHunt(args []string) error {
	fs := flag.NewFlagSet("hunt", flag.ExitOnError)
	logs := fs.String("logs", "", "audit log file")
	report := fs.String("report", "", "OSCTI report file")
	query := fs.String("query", "", "TBQL query file")
	cpr := fs.Bool("cpr", false, "apply CPR before storage")
	shards := fs.Int("shards", 1, "per-host store shards (hunts fan out across them)")
	fs.Parse(args)
	if *logs == "" {
		return fmt.Errorf("missing -logs")
	}
	sys, err := newLoadedSystem(*logs, *cpr, *shards)
	if err != nil {
		return err
	}
	q, err := loadQuery(sys, *report, *query)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "query:\n%s\n\n", q.String())
	res, err := sys.HuntQuery(q)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	logs := fs.String("logs", "", "audit log file")
	report := fs.String("report", "", "OSCTI report file")
	query := fs.String("query", "", "TBQL query file")
	shards := fs.Int("shards", 1, "per-host store shards (hunts fan out across them)")
	fs.Parse(args)
	if *logs == "" {
		return fmt.Errorf("missing -logs")
	}
	sys, err := newLoadedSystem(*logs, false, *shards)
	if err != nil {
		return err
	}
	q, err := loadQuery(sys, *report, *query)
	if err != nil {
		return err
	}
	fmt.Printf("TBQL query (%d chars):\n%s\n\n", len(q.String()), q.String())
	res, err := sys.HuntQuery(q)
	if err != nil {
		return err
	}
	fmt.Println("compiled data queries (execution order):")
	for i, dq := range res.Stats.DataQueries {
		kind := "SQL   "
		if strings.HasPrefix(dq, "MATCH") {
			kind = "Cypher"
		}
		fmt.Printf("  %d. [%s] %s\n", i+1, kind, dq)
	}
	fmt.Printf("\nrows fetched: %d, propagations: %d, join candidates: %d, matches: %d\n",
		res.Stats.RowsFetched, res.Stats.Propagations, res.Stats.JoinCandidates, len(res.Rows))
	return nil
}

func runEvalNLP(args []string) error {
	fs := flag.NewFlagSet("eval-nlp", flag.ExitOnError)
	n := fs.Int("n", 20, "corpus size")
	steps := fs.Int("steps", 6, "relation steps per report")
	seed := fs.Int64("seed", 42, "corpus seed")
	fs.Parse(args)

	corpus := ctigen.Corpus(*seed, *n, *steps)
	fmt.Printf("NLP extraction accuracy over %d generated reports (%d steps each)\n\n", *n, *steps)
	fmt.Printf("%-22s %8s %8s %8s   %8s %8s %8s\n", "extractor",
		"IOC-P", "IOC-R", "IOC-F1", "REL-P", "REL-R", "REL-F1")
	for _, ex := range []eval.Extractor{eval.Pipeline{}, eval.RegexCooccur{}, eval.IOCOnly{}} {
		iocM, relM := eval.Score(ex, corpus)
		fmt.Printf("%-22s %8.3f %8.3f %8.3f   %8.3f %8.3f %8.3f\n", ex.Name(),
			iocM.Precision(), iocM.Recall(), iocM.F1(),
			relM.Precision(), relM.Recall(), relM.F1())
	}
	return nil
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	benign := fs.Int("benign", 5000, "benign background events")
	attack := fs.String("attack", "leak", "demo attack: leak or crack")
	fs.Parse(args)

	var kind gen.AttackKind
	var report string
	switch *attack {
	case "leak":
		kind, report = gen.AttackDataLeakage, extract.Fig2Text
	case "crack":
		kind, report = gen.AttackPasswordCrack, extract.PasswordCrackText
	default:
		return fmt.Errorf("unknown attack %q", *attack)
	}

	fmt.Printf("=== ThreatRaptor demo: %s after Shellshock penetration ===\n\n", kind)

	fmt.Printf("[1/5] simulating audited host (%d benign events + scripted attack)...\n", *benign)
	w := gen.Generate(gen.Config{Seed: 1, BenignEvents: *benign, Duration: time.Hour,
		Attacks: []gen.Attack{{Kind: kind, At: 30 * time.Minute}}})
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		return err
	}
	start := time.Now()
	stats, err := sys.IngestRecords(w.Records)
	if err != nil {
		return err
	}
	fmt.Printf("      %d events, %d entities ingested in %v\n\n", stats.EventsIn, stats.Entities, time.Since(start).Round(time.Millisecond))

	fmt.Println("[2/5] OSCTI report:")
	fmt.Println(indent(wrap(report, 76), "      "))

	fmt.Println("\n[3/5] extracted threat behavior graph:")
	g := sys.ExtractBehavior(report)
	fmt.Print(indent(g.String(), "      "))

	fmt.Println("\n[4/5] synthesized TBQL query:")
	q, _, err := sys.SynthesizeQuery(g, nil)
	if err != nil {
		return err
	}
	fmt.Println(indent(q.String(), "      "))

	fmt.Println("\n[5/5] executing the query over the audit data...")
	start = time.Now()
	res, err := sys.HuntQuery(q)
	if err != nil {
		return err
	}
	fmt.Printf("      executed in %v (%d data queries, %d rows fetched)\n\n",
		time.Since(start).Round(time.Millisecond), len(res.Stats.DataQueries), res.Stats.RowsFetched)
	printResult(res)
	fmt.Printf("\nground truth: the attack had %d steps; the hunt matched %d complete chain(s)\n",
		len(w.Truth), len(res.Matches))
	return nil
}

func printResult(res *threatraptor.HuntResult) {
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	for _, r := range res.Rows {
		for i, v := range r {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	row := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	row(res.Cols)
	for _, r := range res.Rows {
		row(r)
	}
	if len(res.Rows) == 0 {
		fmt.Println("(no matches)")
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

func wrap(s string, width int) string {
	words := strings.Fields(s)
	var b strings.Builder
	col := 0
	for _, w := range words {
		if col+len(w)+1 > width && col > 0 {
			b.WriteByte('\n')
			col = 0
		} else if col > 0 {
			b.WriteByte(' ')
			col++
		}
		b.WriteString(w)
		col += len(w)
	}
	return b.String()
}
