// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, so CI can publish benchmark results
// (BENCH_PR4.json, BENCH_PR5.json, ...) in a machine-readable form and
// the performance trajectory can be tracked across PRs without
// scraping logs. The optional -suite flag stamps each record with a
// suite name, so results concatenated from several runs stay
// distinguishable in one artifact.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -suite pr5 > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Suite labels which benchmark run the record came from (-suite).
	Suite      string  `json:"suite,omitempty"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
}

// parseLine parses one `go test -bench` output line, reporting ok=false
// for non-benchmark lines (headers, PASS/ok trailers, test logs).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	sawNs := false
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		case "MB/s":
			r.MBPerS = &v
		}
	}
	return r, sawNs
}

// parse converts whole `go test -bench` output into results.
func parse(lines []string) []Result {
	out := make([]Result, 0, len(lines))
	for _, line := range lines {
		if r, ok := parseLine(line); ok {
			out = append(out, r)
		}
	}
	return out
}

func main() {
	suite := flag.String("suite", "", "suite name stamped into every record")
	flag.Parse()
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	results := parse(lines)
	for i := range results {
		results[i].Suite = *suite
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
