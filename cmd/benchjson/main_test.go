package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIngestUnderOpenCursors/cursors-0         	       5	   9349731 ns/op	   0.21 MB/s
BenchmarkHuntFirstPage-8   	    2066	    574129 ns/op	  171246 B/op	    2215 allocs/op
--- BENCH: BenchmarkSomethingVerbose
    bench_test.go:10: log line
PASS
ok  	repro	0.847s
`

func TestParse(t *testing.T) {
	rs := parse(splitLines(sample))
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(rs), rs)
	}

	r0 := rs[0]
	if r0.Name != "BenchmarkIngestUnderOpenCursors/cursors-0" || r0.Iterations != 5 {
		t.Errorf("result 0 = %+v", r0)
	}
	if r0.NsPerOp != 9349731 {
		t.Errorf("result 0 ns/op = %v", r0.NsPerOp)
	}
	if r0.MBPerS == nil || *r0.MBPerS != 0.21 {
		t.Errorf("result 0 MB/s = %v", r0.MBPerS)
	}
	if r0.BytesPerOp != nil || r0.AllocsPerOp != nil {
		t.Errorf("result 0 has benchmem fields without -benchmem: %+v", r0)
	}

	r1 := rs[1]
	if r1.Name != "BenchmarkHuntFirstPage-8" || r1.Iterations != 2066 || r1.NsPerOp != 574129 {
		t.Errorf("result 1 = %+v", r1)
	}
	if r1.BytesPerOp == nil || *r1.BytesPerOp != 171246 {
		t.Errorf("result 1 B/op = %v", r1.BytesPerOp)
	}
	if r1.AllocsPerOp == nil || *r1.AllocsPerOp != 2215 {
		t.Errorf("result 1 allocs/op = %v", r1.AllocsPerOp)
	}
}

func TestParseRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro	0.1s",
		"Benchmark",                       // no fields
		"BenchmarkX notanumber 5 ns/op",   // bad iterations
		"BenchmarkX 5 notanumber ns/op",   // bad value
		"BenchmarkX 5 123 widgets/op",     // no ns/op
		"--- BENCH: BenchmarkSomething-8", // verbose marker
	} {
		if r, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, r)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
