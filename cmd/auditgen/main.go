// Command auditgen generates Sysdig-style system audit logs for a
// simulated enterprise host: benign background activity interleaved with
// the paper's two scripted multi-stage attacks.
//
// Usage:
//
//	auditgen -benign 10000 -attacks leak@10m,crack@30m -o host1.log
//
// The ground-truth attack steps are written to stderr so hunting recall
// can be checked against them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "rng seed")
		host    = flag.String("host", "host1", "host name")
		benign  = flag.Int("benign", 5000, "approximate number of benign events")
		dur     = flag.Duration("duration", time.Hour, "workload time span")
		attacks = flag.String("attacks", "leak@10m", "comma list of kind@offset (kinds: leak, crack); empty for benign-only")
		out     = flag.String("o", "-", "output file (- for stdout)")
		quiet   = flag.Bool("q", false, "suppress ground-truth listing")
	)
	flag.Parse()

	cfg := gen.Config{Seed: *seed, Host: *host, BenignEvents: *benign, Duration: *dur}
	if *attacks != "" {
		for _, spec := range strings.Split(*attacks, ",") {
			kind, off, err := parseAttack(strings.TrimSpace(spec))
			if err != nil {
				fatal(err)
			}
			cfg.Attacks = append(cfg.Attacks, gen.Attack{Kind: kind, At: off})
		}
	}

	w := gen.Generate(cfg)
	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if _, err := w.WriteTo(dst); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "# %d records, %d ground-truth attack steps\n", len(w.Records), len(w.Truth))
		for _, st := range w.Truth {
			fmt.Fprintf(os.Stderr, "# %s step %d: %s | %s\n",
				st.Attack, st.Step, st.Desc, audit.FormatRecord(st.Record))
		}
	}
}

func parseAttack(spec string) (gen.AttackKind, time.Duration, error) {
	name, offStr, found := strings.Cut(spec, "@")
	off := time.Duration(0)
	if found {
		var err error
		off, err = time.ParseDuration(offStr)
		if err != nil {
			return 0, 0, fmt.Errorf("bad attack offset %q: %w", offStr, err)
		}
	}
	switch name {
	case "leak", "data-leakage":
		return gen.AttackDataLeakage, off, nil
	case "crack", "password-crack":
		return gen.AttackPasswordCrack, off, nil
	default:
		return 0, 0, fmt.Errorf("unknown attack kind %q (want leak or crack)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "auditgen:", err)
	os.Exit(1)
}
