// Command tbql executes TBQL queries over system audit logs.
//
// Usage:
//
//	tbql -logs host1.log -e 'proc p["%tar%"] read file f as e1
//	return p, f'
//	tbql -logs host1.log -query hunt.tbql -explain
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		logs    = flag.String("logs", "", "audit log file (required)")
		queryF  = flag.String("query", "", "TBQL query file")
		expr    = flag.String("e", "", "inline TBQL query")
		cpr     = flag.Bool("cpr", false, "apply causality-preserved reduction before storage")
		explain = flag.Bool("explain", false, "print compiled data queries and stats")
	)
	flag.Parse()

	if *logs == "" || (*queryF == "" && *expr == "") {
		fmt.Fprintln(os.Stderr, "usage: tbql -logs FILE (-query FILE | -e QUERY) [-cpr] [-explain]")
		os.Exit(2)
	}
	src := *expr
	if *queryF != "" {
		data, err := os.ReadFile(*queryF)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	sys, err := threatraptor.New(threatraptor.Options{CPR: *cpr})
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*logs)
	if err != nil {
		fatal(err)
	}
	stats, err := sys.IngestLogs(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ingested %d events (%d stored, %.2fx reduction), %d entities\n",
		stats.EventsIn, stats.EventsStored, stats.CPRReduction, stats.Entities)

	res, err := sys.Hunt(src)
	if err != nil {
		fatal(err)
	}
	printTable(res.Cols, res.Rows)
	fmt.Fprintf(os.Stderr, "%d rows\n", len(res.Rows))
	if *explain {
		fmt.Fprintln(os.Stderr, "\ndata queries (execution order):")
		for i, q := range res.Stats.DataQueries {
			fmt.Fprintf(os.Stderr, "  %d. %s\n", i+1, q)
		}
		fmt.Fprintf(os.Stderr, "rows fetched: %d, propagations: %d, join candidates: %d\n",
			res.Stats.RowsFetched, res.Stats.Propagations, res.Stats.JoinCandidates)
	}
}

func printTable(cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, v := range r {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(strings.Join(parts, "  "))
	}
	line(cols)
	seps := make([]string, len(cols))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbql:", err)
	os.Exit(1)
}
