// Package threatraptor is the public facade of ThreatRaptor, a system
// that facilitates cyber threat hunting in computer systems using
// open-source Cyber Threat Intelligence (OSCTI).
//
// ThreatRaptor bridges OSCTI with system auditing: it (1) extracts
// structured threat behaviors (IOCs and IOC relations) from unstructured
// OSCTI text with an unsupervised NLP pipeline, (2) stores system audit
// logging data in relational and graph database backends, (3) provides
// the Threat Behavior Query Language (TBQL) for hunting malicious system
// activities, (4) automatically synthesizes TBQL queries from extracted
// threat behavior graphs, and (5) executes TBQL queries efficiently with
// pruning-score scheduling and cross-pattern constraint propagation.
//
// Typical usage:
//
//	sys := threatraptor.New(threatraptor.Options{CPR: true})
//	sys.IngestLogs(logFile)                   // Sysdig-style audit logs
//	g := sys.ExtractBehavior(reportText)      // OSCTI report -> graph
//	q, _, _ := sys.SynthesizeQuery(g, nil)    // graph -> TBQL
//	res, _ := sys.HuntQuery(q)                // TBQL -> matched records
package threatraptor

import (
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/exec"
	"repro/internal/extract"
	"repro/internal/graphstore"
	"repro/internal/provenance"
	"repro/internal/relstore"
	"repro/internal/synth"
	"repro/internal/tbql"
)

// Re-exported types so downstream users can name the values the facade
// returns without importing internal packages.
type (
	// BehaviorGraph is a threat behavior graph extracted from OSCTI text.
	BehaviorGraph = extract.Graph
	// Query is an analyzed TBQL query.
	Query = tbql.Query
	// SynthPlan configures query synthesis (nil = default plan).
	SynthPlan = synth.Plan
	// SynthReport lists what synthesis screening dropped.
	SynthReport = synth.Report
	// HuntResult is the result of executing a TBQL query.
	HuntResult = exec.Result
	// Record is one raw audit record.
	Record = audit.Record
	// TimeWindow bounds patterns to [From, To] unix nanoseconds.
	TimeWindow = tbql.TimeWindow
	// Entity is a resolved system entity.
	Entity = audit.Entity
	// TrackOptions bounds a causality tracking run.
	TrackOptions = provenance.TrackOptions
	// CausalSubgraph is the result of causality tracking.
	CausalSubgraph = provenance.Subgraph
)

// Tracking directions re-exported for Investigate.
const (
	TrackBackward = provenance.Backward
	TrackForward  = provenance.Forward
)

// Entity type tags re-exported for inspecting hunt and tracking results.
const (
	EntityFileType    = audit.EntityFile
	EntityProcessType = audit.EntityProcess
	EntityNetConnType = audit.EntityNetConn
)

// Options configures a System.
type Options struct {
	// CPR applies Causality Preserved Reduction before storage, merging
	// excessive events between the same entity pair.
	CPR bool
	// MaxPathHops caps unbounded TBQL path patterns (default 6).
	MaxPathHops int
	// LenientParsing makes log ingestion skip malformed lines instead of
	// failing.
	LenientParsing bool
	// DisableScheduling and DisablePropagation turn off the execution
	// engine's optimizations (used by the efficiency experiments).
	DisableScheduling  bool
	DisablePropagation bool
}

// IngestStats summarises one ingestion batch.
type IngestStats struct {
	Entities     int
	EventsIn     int
	EventsStored int
	CPRReduction float64 // events-in / events-stored (1.0 without CPR)
	ParseErrors  int
}

// System is a ThreatRaptor deployment: parsers, reduction, both storage
// backends, and the query execution engine.
type System struct {
	opts   Options
	parser *audit.Parser
	rel    *relstore.DB
	graph  *graphstore.Graph
	engine *exec.Engine
	stored int // events already flushed to the stores
}

// New creates an empty System.
func New(opts Options) (*System, error) {
	rel := relstore.NewDB()
	if err := relstore.Bootstrap(rel); err != nil {
		return nil, fmt.Errorf("threatraptor: %w", err)
	}
	g := graphstore.NewGraph()
	graphstore.Bootstrap(g)
	p := audit.NewParser()
	p.Lenient = opts.LenientParsing
	return &System{
		opts:   opts,
		parser: p,
		rel:    rel,
		graph:  g,
		engine: &exec.Engine{
			Rel: rel, Graph: g,
			MaxPathHops:        opts.MaxPathHops,
			DisableScheduling:  opts.DisableScheduling,
			DisablePropagation: opts.DisablePropagation,
		},
	}, nil
}

// IngestLogs parses Sysdig-style audit log lines from r and stores the
// resulting entities and events in both backends.
func (s *System) IngestLogs(r io.Reader) (IngestStats, error) {
	mark := len(s.parser.Events())
	if err := s.parser.ParseStream(r); err != nil {
		return IngestStats{}, fmt.Errorf("threatraptor: ingest: %w", err)
	}
	return s.flush(mark)
}

// IngestRecords stores already-parsed audit records.
func (s *System) IngestRecords(recs []Record) (IngestStats, error) {
	mark := len(s.parser.Events())
	for _, r := range recs {
		if _, err := s.parser.Add(r); err != nil {
			if s.opts.LenientParsing {
				s.parser.Errs = append(s.parser.Errs, err)
				continue
			}
			return IngestStats{}, fmt.Errorf("threatraptor: ingest: %w", err)
		}
	}
	return s.flush(mark)
}

// flush stores events parsed since mark, applying CPR when configured.
// Entities are stored incrementally; the parser deduplicates them, so new
// entities are exactly those beyond the stored high-water mark.
func (s *System) flush(mark int) (IngestStats, error) {
	newEvents := s.parser.Events()[mark:]
	stats := IngestStats{EventsIn: len(newEvents), ParseErrors: len(s.parser.Errs)}

	entities := s.parser.Entities()
	newEntities := entities[s.countStoredEntities():]
	stats.Entities = len(entities)

	toStore := newEvents
	stats.CPRReduction = 1
	if s.opts.CPR {
		reduced, cprStats := provenance.Reduce(newEvents)
		toStore = reduced
		stats.CPRReduction = cprStats.ReductionFactor()
	}
	stats.EventsStored = len(toStore)

	if err := relstore.Load(s.rel, newEntities, toStore); err != nil {
		return stats, fmt.Errorf("threatraptor: store: %w", err)
	}
	if err := graphstore.Load(s.graph, newEntities, toStore); err != nil {
		return stats, fmt.Errorf("threatraptor: store: %w", err)
	}
	s.stored += len(toStore)
	return stats, nil
}

func (s *System) countStoredEntities() int {
	return s.rel.Table(relstore.EntityTable).NumRows()
}

// ExtractBehavior runs the threat behavior extraction pipeline
// (Algorithm 1) on an OSCTI report.
func (s *System) ExtractBehavior(report string) *BehaviorGraph {
	return extract.Extract(report)
}

// SynthesizeQuery converts a threat behavior graph into an analyzed TBQL
// query under the given synthesis plan (nil for the default plan).
func (s *System) SynthesizeQuery(g *BehaviorGraph, plan *SynthPlan) (*Query, *SynthReport, error) {
	return synth.Synthesize(g, plan)
}

// ParseQuery parses and analyzes TBQL source.
func (s *System) ParseQuery(src string) (*Query, error) {
	return tbql.Parse(src)
}

// Hunt parses and executes TBQL source against the stored audit data.
func (s *System) Hunt(src string) (*HuntResult, error) {
	return s.engine.ExecuteTBQL(src)
}

// HuntQuery executes an analyzed TBQL query.
func (s *System) HuntQuery(q *Query) (*HuntResult, error) {
	return s.engine.Execute(q)
}

// HuntReport is the end-to-end pipeline: extract the threat behavior
// graph from the report, synthesize a TBQL query, and execute it.
func (s *System) HuntReport(report string, plan *SynthPlan) (*Query, *HuntResult, error) {
	g := s.ExtractBehavior(report)
	q, _, err := s.SynthesizeQuery(g, plan)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.HuntQuery(q)
	if err != nil {
		return q, nil, err
	}
	return q, res, nil
}

// Explain compiles and scores every pattern of a query without executing
// it, in the order the engine would schedule them.
func (s *System) Explain(q *Query) ([]exec.ExplainedPattern, error) {
	return s.engine.Explain(q)
}

// NumEvents reports how many events are stored.
func (s *System) NumEvents() int { return s.stored }

// NumEntities reports how many entities are stored.
func (s *System) NumEntities() int { return s.countStoredEntities() }

// FindEntities returns the entities whose named attribute equals value
// (attributes as in TBQL filters: exename, name, path, dstip, ...).
func (s *System) FindEntities(attr, value string) []*Entity {
	var out []*Entity
	for _, e := range s.parser.Entities() {
		if e.Attr(attr) == value {
			out = append(out, e)
		}
	}
	return out
}

// EntityByID returns the stored entity with the given ID, or nil.
func (s *System) EntityByID(id int64) *Entity { return s.parser.EntityByID(id) }

// Investigate runs forward or backward causality tracking from a
// point-of-interest entity over the ingested events (attack
// investigation, the workflow threat hunting hands off to once a hunt
// produces a hit).
func (s *System) Investigate(poi int64, opt TrackOptions) *CausalSubgraph {
	return provenance.Track(s.parser.Events(), poi, opt)
}
