// Package threatraptor is the public facade of ThreatRaptor, a system
// that facilitates cyber threat hunting in computer systems using
// open-source Cyber Threat Intelligence (OSCTI).
//
// ThreatRaptor bridges OSCTI with system auditing: it (1) extracts
// structured threat behaviors (IOCs and IOC relations) from unstructured
// OSCTI text with an unsupervised NLP pipeline, (2) stores system audit
// logging data in relational and graph database backends, (3) provides
// the Threat Behavior Query Language (TBQL) for hunting malicious system
// activities, (4) automatically synthesizes TBQL queries from extracted
// threat behavior graphs, and (5) executes TBQL queries efficiently with
// pruning-score scheduling and cross-pattern constraint propagation.
//
// Typical usage:
//
//	sys := threatraptor.New(threatraptor.Options{CPR: true})
//	sys.IngestLogs(logFile)                   // Sysdig-style audit logs
//	g := sys.ExtractBehavior(reportText)      // OSCTI report -> graph
//	q, _, _ := sys.SynthesizeQuery(g, nil)    // graph -> TBQL
//	res, _ := sys.HuntQuery(q)                // TBQL -> matched records
package threatraptor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/exec"
	"repro/internal/extract"
	"repro/internal/graphstore"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/relstore"
	"repro/internal/snapshot"
	"repro/internal/synth"
	"repro/internal/tbql"
	"repro/internal/wal"
)

// Re-exported types so downstream users can name the values the facade
// returns without importing internal packages.
type (
	// BehaviorGraph is a threat behavior graph extracted from OSCTI text.
	BehaviorGraph = extract.Graph
	// Query is an analyzed TBQL query.
	Query = tbql.Query
	// SynthPlan configures query synthesis (nil = default plan).
	SynthPlan = synth.Plan
	// SynthReport lists what synthesis screening dropped.
	SynthReport = synth.Report
	// HuntResult is the result of executing a TBQL query.
	HuntResult = exec.Result
	// Cursor streams the projected rows of a hunt (see HuntCursor).
	Cursor = exec.Cursor
	// Record is one raw audit record.
	Record = audit.Record
	// Epoch identifies one ingest commit (see System.Epoch).
	Epoch = snapshot.Epoch
	// TimeWindow bounds patterns to [From, To] unix nanoseconds.
	TimeWindow = tbql.TimeWindow
	// Entity is a resolved system entity.
	Entity = audit.Entity
	// TrackOptions bounds a causality tracking run.
	TrackOptions = provenance.TrackOptions
	// CausalSubgraph is the result of causality tracking.
	CausalSubgraph = provenance.Subgraph
)

// Tracking directions re-exported for Investigate.
const (
	TrackBackward = provenance.Backward
	TrackForward  = provenance.Forward
)

// Entity type tags re-exported for inspecting hunt and tracking results.
const (
	EntityFileType    = audit.EntityFile
	EntityProcessType = audit.EntityProcess
	EntityNetConnType = audit.EntityNetConn
)

// Options configures a System.
type Options struct {
	// CPR applies Causality Preserved Reduction before storage, merging
	// excessive events between the same entity pair.
	CPR bool
	// MaxPathHops caps unbounded TBQL path patterns (default 6).
	MaxPathHops int
	// LenientParsing makes log ingestion skip malformed lines instead of
	// failing.
	LenientParsing bool
	// DisableScheduling and DisablePropagation turn off the execution
	// engine's optimizations (used by the efficiency experiments).
	DisableScheduling  bool
	DisablePropagation bool
	// DisableCostOptimizer turns off the cost-based optimizer:
	// selectivity-driven join reordering from ingest-time cardinality
	// stats and fetch-side row caps. Hunts then run in the static
	// pruning-score order (escape hatch and ablation baseline).
	DisableCostOptimizer bool
	// UseNaiveJoin replaces the streaming hash join with the legacy
	// materializing nested-loop join (correctness baseline for the
	// equivalence tests and allocation benchmarks).
	UseNaiveJoin bool
	// MaxPropagatedIDs bounds the size of a propagated entity-ID
	// constraint set (default exec.DefaultMaxPropagatedIDs = 25600);
	// oversized candidate sets are dropped and counted in
	// HuntResult.Stats.PropagationsSkipped. Propagated sets are bound
	// plan parameters probed per row — not rendered IN-list text — so
	// large caps cost memory, not parse time.
	MaxPropagatedIDs int
	// MaxJoinRows bounds how many candidate rows one hunt's join may
	// examine (0 = unbounded): a hunt that exceeds it aborts with
	// exec.ErrJoinBudget, releasing its snapshot, so a cross-product-
	// shaped query cannot pin a core indefinitely. The daemon maps the
	// error to 422.
	MaxJoinRows int
	// PlanCacheSize bounds the cross-hunt prepared-plan cache (plan
	// templates, LRU-evicted). 0 means the default (256); a negative
	// value disables the cache, so every hunt compiles its patterns'
	// data queries (still once per pattern, shared across shards).
	PlanCacheSize int
	// Shards partitions both storage backends into per-host shards
	// (default 1, the unsharded store). Events live in the shard of
	// their host, entities are broadcast to every shard, so ingest
	// batches for different hosts load in parallel on disjoint write
	// locks and hunts fan their data queries out across shards — pruned
	// to a single shard when a pattern filters host = '...'.
	Shards int
	// WAL attaches a durability log (opened, not yet replayed). New
	// replays it into the fresh stores — recovering the previous
	// process's state — and every later ingest commit appends to it
	// before publishing, so an acknowledged batch survives a crash (at
	// the log's fsync policy). nil keeps the store memory-only.
	WAL *wal.Log
	// IngestChunk splits ingest batches into commits of at most this
	// many records through the serialized interning phase, so one huge
	// batch cannot monopolize the ingest lock (default
	// DefaultIngestChunk; negative disables chunking). Each chunk is its
	// own epoch and WAL record: a chunked batch is atomic per chunk, not
	// end-to-end — a mid-batch failure can leave a committed prefix.
	IngestChunk int
	// Metrics, when set, receives latency observations from the facade's
	// hot paths: ingest commit duration, standing-hunt Advance duration,
	// and watch delivery lag in epochs. Every observation is lock-free
	// and nil-safe, so a System without metrics pays one pointer test.
	Metrics *obs.Metrics
	// DisableTracing turns off the engine's default per-hunt pipeline
	// trace (the A/B knob for the tracing-overhead benchmark).
	DisableTracing bool
}

// DefaultIngestChunk is the records-per-commit bound when
// Options.IngestChunk is 0.
const DefaultIngestChunk = 5000

// ErrStorage marks ingestion failures in the storage phase, as opposed
// to parse failures of the caller's input. Callers (the HTTP daemon)
// test it with errors.Is to classify a failure as server-side.
var ErrStorage = errors.New("storage failure")

// ErrDegraded marks ingestion refused because the durability log hit a
// disk fault and the system is read-only. Hunts keep working; the HTTP
// daemon maps this to 503.
var ErrDegraded = wal.ErrDegraded

// IngestStats summarises one ingestion batch. All fields are per-batch.
type IngestStats struct {
	Entities     int // entities newly interned by this batch
	EventsIn     int
	EventsStored int
	CPRReduction float64 // events-in / events-stored (1.0 without CPR)
	ParseErrors  int     // malformed lines skipped in this batch (lenient mode)
}

// System is a ThreatRaptor deployment: parsers, reduction, both storage
// backends (host-sharded; 1 shard by default), and the query execution
// engine.
//
// A System is safe for concurrent use: any number of goroutines may
// Hunt, Explain, Investigate, and inspect counters while others ingest.
// Record interning and the entity broadcast are serialized so the
// high-water-mark bookkeeping stays consistent, but the bulk of a
// batch — loading its events into the stores — runs outside that lock:
// batches for different hosts land on disjoint shards and load in
// parallel. Storage is epoch-based multi-version: every ingest commit
// advances the epoch clock, and a hunt pins an epoch snapshot (append
// watermarks over both backends) of every shard it touches for its
// whole execution — for cursor hunts, until the cursor is closed or
// exhausted. Snapshots are watermarks, not locks: readers never block
// writers, writers never block open cursors (including the shard-0
// entity-table snapshot the projection cache reads), and a batch that
// interns new entities flows as freely as an event-only one no matter
// how many cursors are open or how long they live.
type System struct {
	opts   Options
	parser *audit.Parser
	rel    *relstore.Sharded
	graph  *graphstore.Sharded
	engine *exec.Engine
	// wal is the attached durability log (nil = memory-only system).
	wal *wal.Log
	// metrics is the optional telemetry bundle (nil = no observations).
	metrics *obs.Metrics

	// clock names ingest commits with monotonically increasing epochs;
	// cursors report the epoch they pinned (Cursor.Epoch) and the
	// service's cursor registry GCs epochs no cursor references.
	clock snapshot.Clock

	// ingestMu serializes record interning and the entity broadcast
	// (IngestLogs, IngestRecords); per-shard event loads run outside it,
	// and queries run concurrently against epoch snapshots.
	ingestMu sync.Mutex
	stored   atomic.Int64 // events already flushed to the stores

	// shardIngests counts, per shard, the ingest batches that stored
	// events there (GET /stats surfaces it next to per-shard row counts).
	shardIngests []atomic.Int64

	// Standing-hunt registry (see watch.go). watchNotify is a 1-buffered
	// coalescing channel the clock's commit announcements post to;
	// watchLoop drains it and pumps every registered watch.
	watchMu      sync.Mutex
	watches      map[uint64]*Watch
	watchNextID  uint64
	watchRunning bool
	watchNotify  chan struct{}
	watchOpened  atomic.Int64
	watchBatches atomic.Int64
	watchRows    atomic.Int64
	watchEvicted atomic.Int64
}

// New creates an empty System.
func New(opts Options) (*System, error) {
	nShards := opts.Shards
	if nShards < 1 {
		nShards = 1
	}
	rel, err := relstore.NewSharded(nShards)
	if err != nil {
		return nil, fmt.Errorf("threatraptor: %w", err)
	}
	g := graphstore.NewSharded(nShards)
	p := audit.NewParser()
	p.Lenient = opts.LenientParsing
	s := &System{
		opts:   opts,
		parser: p,
		rel:    rel,
		graph:  g,
		engine: &exec.Engine{
			Rel: rel, Graph: g,
			MaxPathHops:          opts.MaxPathHops,
			DisableScheduling:    opts.DisableScheduling,
			DisablePropagation:   opts.DisablePropagation,
			DisableCostOptimizer: opts.DisableCostOptimizer,
			UseNaiveJoin:         opts.UseNaiveJoin,
			MaxPropagatedIDs:     opts.MaxPropagatedIDs,
			MaxJoinRows:          opts.MaxJoinRows,
			DisableTracing:       opts.DisableTracing,
		},
		metrics:      opts.Metrics,
		shardIngests: make([]atomic.Int64, nShards),
		watches:      make(map[uint64]*Watch),
		watchNotify:  make(chan struct{}, 1),
	}
	s.notifyWatches()
	planCache := opts.PlanCacheSize
	if planCache == 0 {
		planCache = exec.DefaultPlanCacheSize
	}
	// NewPlanCache returns nil for capacity < 1 — the disabled cache.
	s.engine.Plans = exec.NewPlanCache(planCache)
	s.engine.Clock = &s.clock

	// With a durability log attached, recover the previous process's
	// state before the system serves anything: segment sets then the WAL
	// tail replay into the fresh stores, and the epoch clock resumes past
	// the highest recovered commit.
	if opts.WAL != nil {
		s.wal = opts.WAL
		info, err := s.wal.Replay(s.applyCommit)
		if err != nil {
			return nil, fmt.Errorf("threatraptor: recovery: %w", err)
		}
		// Segment replay applies per-shard event files concurrently, so
		// the parser's provenance log interleaves across shards; restore
		// commit order (event IDs were assigned under the ingest lock)
		// before any reader depends on it.
		s.parser.SortRestoredEvents()
		s.clock.Reset(Epoch(info.Epoch))
	}
	return s, nil
}

// applyCommit loads one recovered commit into the parser and both
// stores — the same load path live ingestion uses, minus the WAL
// append. Replay runs before any reader exists, but segment replay may
// call it concurrently for event commits of different shards
// (wal.Replay's contract): that is safe here because Restore locks the
// parser, each event load locks only its target shard, and the counters
// are atomic. New re-sorts the parser's event log afterwards.
func (s *System) applyCommit(c *wal.Commit) error {
	s.parser.Restore(c.Entities, c.Events)
	if len(c.Entities) > 0 {
		if err := s.rel.LoadEntities(c.Entities); err != nil {
			return fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
		}
		if err := s.graph.LoadNodes(c.Entities); err != nil {
			return fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
		}
	}
	if len(c.Events) > 0 {
		if err := s.rel.LoadEvents(c.Events); err != nil {
			return fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
		}
		if err := s.graph.LoadEdges(c.Events); err != nil {
			return fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
		}
		s.stored.Add(int64(len(c.Events)))
		for _, si := range touchedShards(c.Events, s.rel.NumShards()) {
			s.shardIngests[si].Add(1)
		}
	}
	return nil
}

// Recovery reports what this process's restart recovery replayed (zero
// value for a memory-only system or a fresh data dir).
func (s *System) Recovery() wal.RecoveryInfo {
	if s.wal == nil {
		return wal.RecoveryInfo{}
	}
	return s.wal.Recovery()
}

// Degraded reports whether the durability log hit a disk fault (the
// system is read-only) and the reason. Always false without a WAL.
func (s *System) Degraded() (string, bool) {
	if s.wal == nil {
		return "", false
	}
	return s.wal.Degraded()
}

// WALStats snapshots the durability log's counters (zero value without
// a WAL).
func (s *System) WALStats() wal.Stats {
	if s.wal == nil {
		return wal.Stats{}
	}
	return s.wal.Stats()
}

// PlanCacheStats reports the cross-hunt plan cache's cumulative hit and
// miss counts plus its current size (0/0/0 when the cache is disabled).
// Hits climbing while misses stay flat is the repeat-hunt workload
// skipping compilation entirely.
func (s *System) PlanCacheStats() (hits, misses int64, size int) {
	hits, misses = s.engine.Plans.Counters()
	return hits, misses, s.engine.Plans.Len()
}

// Epoch returns the current ingest epoch: the number of ingest commits
// so far. A cursor created now reports at least this epoch
// (Cursor.Epoch) and pages one immutable cut that includes everything
// those commits made visible — plus, possibly, a commit completing
// concurrently with the cursor's snapshot capture (the watermark
// vector, not the epoch number, is the snapshot boundary).
func (s *System) Epoch() Epoch { return s.clock.Current() }

// NumShards reports how many per-host shards each storage backend has.
func (s *System) NumShards() int { return s.rel.NumShards() }

// IngestLogs parses Sysdig-style audit log lines from r and stores the
// resulting entities and events in both backends. The batch is atomic
// with respect to parse errors: in strict mode a malformed line fails
// the whole batch before anything is interned, so a client can fix and
// retry without duplicating the prefix.
func (s *System) IngestLogs(r io.Reader) (IngestStats, error) {
	recs, parseErrs, err := audit.ParseRecords(r, s.opts.LenientParsing)
	if err != nil {
		return IngestStats{}, fmt.Errorf("threatraptor: ingest: %w", err)
	}
	return s.ingest(recs, len(parseErrs))
}

// IngestRecords stores already-parsed audit records. Like IngestLogs,
// records are validated up front so a strict-mode failure leaves no
// partial batch behind.
func (s *System) IngestRecords(recs []Record) (IngestStats, error) {
	valid := recs
	recErrs := 0
	if s.opts.LenientParsing {
		valid = make([]Record, 0, len(recs))
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				recErrs++
				continue
			}
			valid = append(valid, r)
		}
	} else {
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				return IngestStats{}, fmt.Errorf("threatraptor: ingest: %w", err)
			}
		}
	}
	return s.ingest(valid, recErrs)
}

// ingest splits pre-validated records into bounded chunks and commits
// each through ingestCommit, so one huge batch cannot monopolize the
// ingest lock. Each chunk is its own epoch and WAL record. In
// fsync-always mode only the final chunk's acknowledgement is awaited:
// the log is strictly ordered, so syncing the last record syncs every
// earlier one. parseErrs is this batch's parse-error count, not the
// lifetime total.
func (s *System) ingest(recs []Record, parseErrs int) (IngestStats, error) {
	chunk := s.opts.IngestChunk
	if chunk == 0 {
		chunk = DefaultIngestChunk
	}
	if chunk < 0 || chunk > len(recs) {
		chunk = len(recs)
	}
	total := IngestStats{ParseErrors: parseErrs, CPRReduction: 1}
	var lastAck wal.Ack
	for start := 0; ; start += chunk {
		end := len(recs)
		if chunk > 0 && start+chunk < end {
			end = start + chunk
		}
		st, ack, err := s.ingestCommit(recs[start:end])
		total.Entities += st.Entities
		total.EventsIn += st.EventsIn
		total.EventsStored += st.EventsStored
		if err != nil {
			return total, err
		}
		if ack != nil {
			lastAck = ack
		}
		if end == len(recs) {
			break
		}
	}
	if total.EventsStored > 0 {
		total.CPRReduction = float64(total.EventsIn) / float64(total.EventsStored)
	}
	if lastAck != nil {
		// Awaited outside every lock: concurrent ingests group-commit on
		// one fsync. The data is already visible; the ack is the
		// durability barrier the caller's acknowledgement stands on.
		if err := lastAck(); err != nil {
			return total, fmt.Errorf("threatraptor: ingest: %w", err)
		}
	}
	return total, nil
}

// ingestCommit stages, logs, and publishes one commit. The serialized
// phase under ingestMu — staging, the WAL append, and the entity
// broadcast — keeps the high-water-mark bookkeeping consistent and
// guarantees WAL order matches publish order. Staging mutates nothing,
// and the WAL append happens before any store or parser mutation: a
// disk fault aborts the commit with zero partial in-memory state. The
// event loads run outside the lock, as before: batches for different
// hosts land on disjoint shards and proceed in parallel.
func (s *System) ingestCommit(recs []Record) (IngestStats, wal.Ack, error) {
	commitStart := time.Now()
	s.ingestMu.Lock()
	staged, err := s.parser.Stage(recs)
	if err != nil {
		s.ingestMu.Unlock()
		return IngestStats{}, nil, fmt.Errorf("threatraptor: ingest: %w", err)
	}
	stats := IngestStats{EventsIn: len(staged.Events), CPRReduction: 1}
	toStore := staged.Events
	if s.opts.CPR {
		reduced, cprStats := provenance.Reduce(staged.Events)
		toStore = reduced
		stats.CPRReduction = cprStats.ReductionFactor()
	}
	stats.Entities = len(staged.NewEntities)
	stats.EventsStored = len(toStore)

	// Commit point: the commit claims its epoch when its WAL record is
	// written (or, without a WAL, when it publishes). Readers snapshot
	// watermarks, not the epoch number, so a reader racing this Advance
	// is still perfectly consistent — the epoch names the commit for the
	// cursor registry's and the log's bookkeeping.
	var ack wal.Ack
	if s.wal != nil {
		epoch := s.clock.Advance()
		ack, err = s.wal.Append(&wal.Commit{
			Epoch:    uint64(epoch),
			Entities: staged.NewEntities,
			Events:   toStore,
		})
		if err != nil {
			// Nothing was published: the epoch number is burned (harmless —
			// epochs may have gaps) and the parser and stores are untouched.
			s.ingestMu.Unlock()
			return stats, nil, fmt.Errorf("threatraptor: ingest: %w", err)
		}
	}

	// Publish: the staged batch becomes visible, and the entity
	// broadcast commits the new entities to every shard before this
	// batch (or any later one referencing them) loads events.
	s.parser.Commit(staged)
	if err := s.rel.LoadEntities(staged.NewEntities); err != nil {
		s.ingestMu.Unlock()
		return stats, nil, fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
	}
	if err := s.graph.LoadNodes(staged.NewEntities); err != nil {
		s.ingestMu.Unlock()
		return stats, nil, fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
	}
	s.ingestMu.Unlock()

	if err := s.rel.LoadEvents(toStore); err != nil {
		return stats, nil, fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
	}
	if err := s.graph.LoadEdges(toStore); err != nil {
		return stats, nil, fmt.Errorf("threatraptor: %w: %v", ErrStorage, err)
	}
	s.stored.Add(int64(len(toStore)))
	for _, si := range touchedShards(toStore, s.rel.NumShards()) {
		s.shardIngests[si].Add(1)
	}
	if s.wal == nil {
		s.clock.Advance()
	}
	// The commit is fully visible (events loaded, watermarks moved):
	// announce it so standing hunts evaluate the new delta. Announce only
	// posts a coalescing wake-up — it never blocks the ingest path.
	s.clock.Announce(s.clock.Current())
	// Committed-commit latency only: an aborted commit published nothing,
	// so timing it would skew the histogram toward failures.
	s.metrics.ObserveIngestCommit(commitStart)
	return stats, ack, nil
}

// touchedShards lists the distinct shard indexes a batch's events route
// to, in shard order.
func touchedShards(events []*audit.Event, n int) []int {
	hit := make([]bool, n)
	for _, ev := range events {
		hit[audit.ShardIndex(ev.Host, n)] = true
	}
	var out []int
	for i, h := range hit {
		if h {
			out = append(out, i)
		}
	}
	return out
}

func (s *System) countStoredEntities() int {
	return s.rel.NumEntities()
}

// ExtractBehavior runs the threat behavior extraction pipeline
// (Algorithm 1) on an OSCTI report.
func (s *System) ExtractBehavior(report string) *BehaviorGraph {
	return extract.Extract(report)
}

// SynthesizeQuery converts a threat behavior graph into an analyzed TBQL
// query under the given synthesis plan (nil for the default plan).
func (s *System) SynthesizeQuery(g *BehaviorGraph, plan *SynthPlan) (*Query, *SynthReport, error) {
	return synth.Synthesize(g, plan)
}

// ParseQuery parses and analyzes TBQL source.
func (s *System) ParseQuery(src string) (*Query, error) {
	return tbql.Parse(src)
}

// Hunt parses and executes TBQL source against the stored audit data.
func (s *System) Hunt(src string) (*HuntResult, error) {
	return s.engine.ExecuteTBQL(src)
}

// HuntQuery executes an analyzed TBQL query.
func (s *System) HuntQuery(q *Query) (*HuntResult, error) {
	return s.engine.Execute(q)
}

// HuntCursor parses and executes TBQL source, returning a cursor that
// streams the projected rows instead of materializing Result.Rows —
// the iterator API for paging through large match sets. The join runs
// lazily inside the cursor, so reading the first page of a huge hunt
// does first-page work. An open cursor pins an epoch snapshot of the
// stores its query touches: every page reflects the ingest frontier at
// creation time, and ingestion proceeds freely however long the cursor
// lives. Close a cursor you do not fully drain to free its match state
// and snapshot references.
func (s *System) HuntCursor(src string) (*Cursor, error) {
	return s.engine.ExecuteTBQLCursor(src)
}

// HuntQueryCursor executes an analyzed TBQL query, returning a cursor
// over the projected rows. See HuntCursor for the laziness and Close
// contract.
func (s *System) HuntQueryCursor(q *Query) (*Cursor, error) {
	return s.engine.ExecuteCursor(q)
}

// HuntCursorLimit is HuntCursor with a row-need bound: the caller
// promises to read at most limit rows (0 = unbounded). When the query
// shape allows it, the engine pushes the bound into the per-shard data
// queries as a fetch-side row cap, so a first-page hunt over a huge
// table fetches page-scaled rows instead of the whole table. A capped
// cursor (Stats().FetchCapped) must not be read past limit rows.
func (s *System) HuntCursorLimit(src string, limit int) (*Cursor, error) {
	return s.engine.ExecuteTBQLCursorLimit(src, limit)
}

// HuntQueryCursorLimit is HuntCursorLimit for an already analyzed
// query — the path the daemon's query cache takes, skipping parse and
// analysis on a cache hit. The query must not be mutated after being
// shared; execution treats it as read-only.
func (s *System) HuntQueryCursorLimit(q *Query, limit int) (*Cursor, error) {
	return s.engine.ExecuteCursorLimit(q, limit)
}

// HuntQueryCursorTrace is HuntQueryCursorLimit recording the pipeline
// stages into tr, so a caller that already traced earlier stages (the
// daemon's parse and cache-lookup spans) gets one contiguous span tree
// back from Cursor.Trace. A nil tr uses the engine default.
func (s *System) HuntQueryCursorTrace(q *Query, limit int, tr *obs.Trace) (*Cursor, error) {
	return s.engine.ExecuteCursorTrace(q, limit, tr)
}

// HuntQueryCursorCtx is HuntQueryCursorTrace under a lifecycle context:
// cancelling ctx (a client disconnect, a deadline, an operator kill)
// aborts the hunt's fetch waves and join walk within a bounded amount
// of work, surfacing exec.ErrHuntCancelled / exec.ErrHuntDeadline.
func (s *System) HuntQueryCursorCtx(ctx context.Context, q *Query, limit int, tr *obs.Trace) (*Cursor, error) {
	return s.engine.ExecuteCursorCtx(ctx, q, limit, tr)
}

// HuntReport is the end-to-end pipeline: extract the threat behavior
// graph from the report, synthesize a TBQL query, and execute it.
func (s *System) HuntReport(report string, plan *SynthPlan) (*Query, *HuntResult, error) {
	g := s.ExtractBehavior(report)
	q, _, err := s.SynthesizeQuery(g, plan)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.HuntQuery(q)
	if err != nil {
		return q, nil, err
	}
	return q, res, nil
}

// Explain compiles and scores every pattern of a query without executing
// it, in the order the engine would schedule them.
func (s *System) Explain(q *Query) ([]exec.ExplainedPattern, error) {
	return s.engine.Explain(q)
}

// ExplainTrace is Explain recording its stages as spans on tr (nil
// records nothing).
func (s *System) ExplainTrace(q *Query, tr *obs.Trace) ([]exec.ExplainedPattern, error) {
	return s.engine.ExplainTrace(q, tr)
}

// ExplainTraceCtx is ExplainTrace honoring a lifecycle context. Explain
// runs no data queries — it estimates and compiles only — so the
// context is checked once at entry; a caller whose deadline already
// fired gets exec.ErrHuntDeadline instead of an explanation.
func (s *System) ExplainTraceCtx(ctx context.Context, q *Query, tr *obs.Trace) ([]exec.ExplainedPattern, error) {
	return s.engine.ExplainTraceCtx(ctx, q, tr)
}

// NumEvents reports how many events are stored.
func (s *System) NumEvents() int { return int(s.stored.Load()) }

// NumEntities reports how many entities are stored.
func (s *System) NumEntities() int { return s.countStoredEntities() }

// ShardStats summarises one per-host store shard. Entities are not
// listed per shard: they are broadcast, so every shard holds the full
// entity set.
type ShardStats struct {
	// Events is the shard's event-table row count.
	Events int `json:"events"`
	// GraphEdges is the shard's event-edge count.
	GraphEdges int `json:"graph_edges"`
	// Ingests counts the ingest batches that stored events in this shard.
	Ingests int64 `json:"ingests"`
}

// StoreStats summarises the sizes of both storage backends.
type StoreStats struct {
	Events     int `json:"events"`
	Entities   int `json:"entities"`
	GraphNodes int `json:"graph_nodes"`
	GraphEdges int `json:"graph_edges"`
	// Shards lists per-shard event-row and ingest counts, in shard
	// order (a single entry for an unsharded System).
	Shards []ShardStats `json:"shards"`
	// StatsSketches is the total number of sketch entries the
	// ingest-time cardinality trackers hold across all shards and both
	// backends — the memory footprint of the cost-based optimizer's
	// statistics, in entries (each a few bytes).
	StatsSketches int `json:"stats_sketches"`
}

// Stats reports current store sizes. Safe to call while ingesting and
// hunting; the counts are per-store snapshots, not a cross-store
// transaction.
func (s *System) Stats() StoreStats {
	st := StoreStats{
		Events:     s.NumEvents(),
		Entities:   s.NumEntities(),
		GraphNodes: s.graph.NumNodes(),
	}
	eventRows := s.rel.EventRows()
	edgeCounts := s.graph.EdgeCounts()
	st.Shards = make([]ShardStats, len(eventRows))
	for i := range st.Shards {
		st.Shards[i] = ShardStats{
			Events:     eventRows[i],
			GraphEdges: edgeCounts[i],
			Ingests:    s.shardIngests[i].Load(),
		}
		// Total the per-shard counts rather than re-walking the shards,
		// so the totals always agree with the breakdown even while
		// ingest is running.
		st.GraphEdges += edgeCounts[i]
	}
	for i := 0; i < s.rel.NumShards(); i++ {
		st.StatsSketches += s.rel.Shard(i).StatsFootprint()
	}
	for i := 0; i < s.graph.NumShards(); i++ {
		st.StatsSketches += s.graph.Shard(i).StatsFootprint()
	}
	return st
}

// FindEntities returns the entities whose named attribute equals value
// (attributes as in TBQL filters: exename, name, path, dstip, ...).
func (s *System) FindEntities(attr, value string) []*Entity {
	var out []*Entity
	for _, e := range s.parser.Entities() {
		if e.Attr(attr) == value {
			out = append(out, e)
		}
	}
	return out
}

// EntityByID returns the stored entity with the given ID, or nil.
func (s *System) EntityByID(id int64) *Entity { return s.parser.EntityByID(id) }

// Investigate runs forward or backward causality tracking from a
// point-of-interest entity over the ingested events (attack
// investigation, the workflow threat hunting hands off to once a hunt
// produces a hit).
func (s *System) Investigate(poi int64, opt TrackOptions) *CausalSubgraph {
	return provenance.Track(s.parser.Events(), poi, opt)
}
