package threatraptor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/audit"
)

// entityBatch is hostBatch with per-batch object files, so every batch
// interns NEW file entities — the batch kind that, under the lock-pinned
// design, queued behind every open cursor (the entity broadcast wrote
// shard 0's entity table, which every cursor read-locked).
func entityBatch(host string, batch, events int) []Record {
	recs := make([]Record, 0, events)
	base := int64(batch * 1_000_000)
	for i := 0; i < events; i++ {
		recs = append(recs, Record{
			StartNS: base + int64(i)*10, EndNS: base + int64(i)*10 + 1,
			Host: host, PID: 100, Exe: "/bin/worker",
			Op: audit.OpRead, ObjType: audit.EntityFile,
			ObjSpec: fmt.Sprintf("/data/%s-b%d-%d", host, batch, i%32), Amount: 64,
		})
	}
	return recs
}

// BenchmarkIngestUnderOpenCursors is the acceptance benchmark for the
// epoch design: ingest throughput while N long-lived cursors are held
// open mid-pagination. Every timed batch interns new entities — the
// formerly worst case. Under the lock-pinned design this degraded
// without bound (every batch queued behind every cursor for the
// cursors' whole lifetimes); under epoch snapshots a held cursor costs
// writers nothing, so the cursors-N variants must stay within ~2× of
// cursors-0.
func BenchmarkIngestUnderOpenCursors(b *testing.B) {
	const (
		hosts    = 4
		perBatch = 500
		shards   = 4
	)
	const wide = `proc p read file f as e1
return p, f`
	for _, cfg := range []struct {
		name    string
		cursors int
	}{
		{"cursors-0", 0},
		{"cursors-8", 8},
		{"cursors-64", 64},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(hosts * perBatch))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := New(Options{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				for h := 0; h < hosts; h++ {
					if _, err := sys.IngestRecords(entityBatch(fmt.Sprintf("host%d", h), 0, perBatch)); err != nil {
						b.Fatal(err)
					}
				}
				// Open the cursors mid-pagination and keep them open across
				// the timed ingest.
				open := make([]*Cursor, 0, cfg.cursors)
				for c := 0; c < cfg.cursors; c++ {
					cur, err := sys.HuntCursor(wide)
					if err != nil {
						b.Fatal(err)
					}
					for n := 0; n < 32 && cur.Next(); n++ {
					}
					open = append(open, cur)
				}
				b.StartTimer()

				var wg sync.WaitGroup
				for h := 0; h < hosts; h++ {
					wg.Add(1)
					go func(h int) {
						defer wg.Done()
						if _, err := sys.IngestRecords(entityBatch(fmt.Sprintf("host%d", h), 1, perBatch)); err != nil {
							b.Error(err)
						}
					}(h)
				}
				wg.Wait()

				b.StopTimer()
				for _, cur := range open {
					cur.Close()
				}
				b.StartTimer()
			}
		})
	}
}
