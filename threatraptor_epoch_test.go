package threatraptor

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestEpochAdvancesPerCommit: the epoch clock counts ingest commits.
func TestEpochAdvancesPerCommit(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != 0 {
		t.Fatalf("fresh system at epoch %d", sys.Epoch())
	}
	for i := 1; i <= 3; i++ {
		if _, err := sys.IngestRecords(hostBatch("h", i, 10)); err != nil {
			t.Fatal(err)
		}
		if got := sys.Epoch(); got != Epoch(i) {
			t.Fatalf("after %d commits, epoch = %d", i, got)
		}
	}
	cur, err := sys.HuntCursor(`proc p read file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Epoch() != 3 {
		t.Fatalf("cursor pinned epoch %d, want 3", cur.Epoch())
	}
}

// TestPinnedCursorPagesEqualEpochMatchSet is the epoch property test at
// the facade level: for several query shapes — single pattern,
// temporal two-pattern join, host-pruned, and sharded variants — a
// cursor opened at a quiet point and paged slowly while per-host
// ingesters hammer the system yields exactly the match set of its
// pinned epoch, in order, with no skips and no repeats. The post-ingest
// store must contain strictly more matches, proving the isolation was
// exercised.
func TestPinnedCursorPagesEqualEpochMatchSet(t *testing.T) {
	queries := []struct {
		name string
		tbql string
	}{
		{"single", `proc p read file f as e1
return p, f`},
		{"temporal-join", `proc p read file f as e1
proc p write file g as e2
with e1 before e2
return p, f, g`},
		{"host-pruned", `proc p[host = "host0"] read file f as e1
return p, f`},
	}
	for _, shards := range []int{1, 4} {
		for _, q := range queries {
			t.Run(fmt.Sprintf("shards-%d/%s", shards, q.name), func(t *testing.T) {
				sys, err := New(Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				const hosts = 3
				for h := 0; h < hosts; h++ {
					if _, err := sys.IngestRecords(hostBatch(fmt.Sprintf("host%d", h), 0, 60)); err != nil {
						t.Fatal(err)
					}
				}

				// Quiet point: open the cursor, then fix the expectation.
				cur, err := sys.HuntCursor(q.tbql)
				if err != nil {
					t.Fatal(err)
				}
				defer cur.Close()
				want, err := sys.Hunt(q.tbql)
				if err != nil {
					t.Fatal(err)
				}
				if len(want.Rows) == 0 {
					t.Fatal("fixture produced no matches")
				}

				// Page a first slice, then turn on heavy concurrent ingest:
				// every batch adds rows that match every query above (same
				// hosts, same files, later times). A fixed batch count per
				// host guarantees matches land both while the cursor is
				// mid-pagination and before the final comparison.
				var got [][]string
				for len(got) < 5 && cur.Next() {
					got = append(got, cur.Row())
				}
				var ingest sync.WaitGroup
				for h := 0; h < hosts; h++ {
					ingest.Add(1)
					go func(h int) {
						defer ingest.Done()
						for b := 1; b <= 3; b++ {
							if _, err := sys.IngestRecords(hostBatch(fmt.Sprintf("host%d", h), b, 40)); err != nil {
								t.Error(err)
								return
							}
						}
					}(h)
				}
				for cur.Next() {
					got = append(got, cur.Row())
				}
				ingest.Wait()
				if err := cur.Err(); err != nil {
					t.Fatal(err)
				}

				if len(got) != len(want.Rows) {
					t.Fatalf("pinned cursor paged %d rows under ingest, epoch match set has %d",
						len(got), len(want.Rows))
				}
				for i := range got {
					if strings.Join(got[i], "\x00") != strings.Join(want.Rows[i], "\x00") {
						t.Fatalf("row %d: paged %v != epoch row %v", i, got[i], want.Rows[i])
					}
				}

				after, err := sys.Hunt(q.tbql)
				if err != nil {
					t.Fatal(err)
				}
				if len(after.Rows) <= len(want.Rows) {
					t.Fatalf("ingest added no matches (%d <= %d): property not exercised",
						len(after.Rows), len(want.Rows))
				}
			})
		}
	}
}
