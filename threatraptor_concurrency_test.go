package threatraptor

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit/gen"
)

// crackSystem builds a system with the password-crack attack already
// ingested, so hunts have a stable hit while more data streams in.
func crackSystem(t testing.TB, benign int) *System {
	t.Helper()
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{
		Seed:         21,
		BenignEvents: benign,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 10 * time.Minute}},
	})
	if _, err := sys.IngestRecords(w.Records); err != nil {
		t.Fatal(err)
	}
	return sys
}

const concurrentCrackTBQL = `proc p["%cracker%"] read file f["%/etc/shadow%"] as e1
return distinct p, f`

// concurrentPathTBQL exercises the graph backend alongside the
// relational one during the interleaved run.
const concurrentPathTBQL = `proc p["%cracker%"] ~>(1~3)[read] file f["%/etc/shadow%"] as e1
return distinct p, f`

// TestConcurrentHuntDuringIngest is the facade race suite: goroutines
// ingest fresh batches while others Hunt (both backends), stream
// results through cursors, Explain, Investigate, and read counters.
// Run with -race; the assertions only require that pre-ingested attack
// data stays visible and nothing errors.
func TestConcurrentHuntDuringIngest(t *testing.T) {
	sys := crackSystem(t, 2000)

	poi := sys.FindEntities("path", "/etc/shadow")
	if len(poi) == 0 {
		t.Fatal("point-of-interest entity missing")
	}
	poiID := poi[0].ID

	const (
		ingestBatches = 8
		huntsPerActor = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, 128)

	// One ingester streaming additional benign batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingestBatches; i++ {
			w := gen.Generate(gen.Config{Seed: int64(100 + i), BenignEvents: 300})
			if _, err := sys.IngestRecords(w.Records); err != nil {
				errs <- fmt.Errorf("ingester batch %d: %w", i, err)
				return
			}
		}
	}()

	// Relational-backend hunters.
	for h := 0; h < 4; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; i < huntsPerActor; i++ {
				res, err := sys.Hunt(concurrentCrackTBQL)
				if err != nil {
					errs <- fmt.Errorf("hunter %d: %w", h, err)
					return
				}
				if len(res.Rows) < 1 {
					errs <- fmt.Errorf("hunter %d: attack disappeared", h)
					return
				}
			}
		}(h)
	}

	// Graph-backend (path pattern) hunters.
	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; i < huntsPerActor; i++ {
				res, err := sys.Hunt(concurrentPathTBQL)
				if err != nil {
					errs <- fmt.Errorf("path hunter %d: %w", h, err)
					return
				}
				if len(res.Rows) < 1 {
					errs <- fmt.Errorf("path hunter %d: attack disappeared", h)
					return
				}
			}
		}(h)
	}

	// Cursor hunters streaming rows instead of materializing them.
	for h := 0; h < 2; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; i < huntsPerActor; i++ {
				cur, err := sys.HuntCursor(concurrentCrackTBQL)
				if err != nil {
					errs <- fmt.Errorf("cursor hunter %d: %w", h, err)
					return
				}
				rows := 0
				for cur.Next() {
					var exe, file string
					if err := cur.Scan(&exe, &file); err != nil {
						errs <- fmt.Errorf("cursor hunter %d: %w", h, err)
						cur.Close()
						return
					}
					rows++
				}
				cur.Close()
				if rows < 1 {
					errs <- fmt.Errorf("cursor hunter %d: attack disappeared", h)
					return
				}
			}
		}(h)
	}

	// An explainer compiling the schedule while data changes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < huntsPerActor; i++ {
			q, err := sys.ParseQuery(concurrentCrackTBQL)
			if err != nil {
				errs <- err
				return
			}
			eps, err := sys.Explain(q)
			if err != nil {
				errs <- err
				return
			}
			if len(eps) == 0 {
				errs <- fmt.Errorf("explainer: empty schedule")
				return
			}
		}
	}()

	// An investigator tracking causality from the point of interest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < huntsPerActor; i++ {
			sub := sys.Investigate(poiID, TrackOptions{Direction: TrackBackward, MaxDepth: 4})
			if sub == nil {
				errs <- fmt.Errorf("investigator: nil subgraph")
				return
			}
		}
	}()

	// A reader polling counters and entity lookups.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < huntsPerActor*4; i++ {
			if sys.NumEvents() <= 0 || sys.NumEntities() <= 0 {
				errs <- fmt.Errorf("reader: zero counters mid-run")
				return
			}
			_ = sys.Stats()
			_ = sys.FindEntities("path", "/etc/shadow")
			_ = sys.EntityByID(poiID)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The serialized ingest batches must all have landed.
	res, err := sys.Hunt(concurrentCrackTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 1 {
		t.Error("attack not found after concurrent run")
	}
}

// TestConcurrentIngestSerialized verifies that concurrent ingestion
// batches do not corrupt the high-water-mark bookkeeping: every batch's
// events land exactly once in both stores.
func TestConcurrentIngestSerialized(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 6
	total := 0
	workloads := make([]*gen.Workload, batches)
	for i := range workloads {
		workloads[i] = gen.Generate(gen.Config{Seed: int64(i + 1), BenignEvents: 200})
		total += len(workloads[i].Records)
	}
	var wg sync.WaitGroup
	errs := make(chan error, batches)
	for _, w := range workloads {
		wg.Add(1)
		go func(w *gen.Workload) {
			defer wg.Done()
			if _, err := sys.IngestRecords(w.Records); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sys.NumEvents() != total {
		t.Errorf("stored %d events, want %d", sys.NumEvents(), total)
	}
	st := sys.Stats()
	if st.GraphEdges != total {
		t.Errorf("graph has %d edges, want %d", st.GraphEdges, total)
	}
	if st.Entities != st.GraphNodes {
		t.Errorf("entity count mismatch: rel=%d graph=%d", st.Entities, st.GraphNodes)
	}
}

// TestHuntCursorFacadeEquivalence asserts the acceptance criterion that
// Result.Rows and HuntCursor return identical rows over the
// password-crack dataset.
func TestHuntCursorFacadeEquivalence(t *testing.T) {
	sys := crackSystem(t, 1500)
	res, err := sys.Hunt(concurrentCrackTBQL)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.HuntCursor(concurrentCrackTBQL)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got [][]string
	for cur.Next() {
		got = append(got, append([]string(nil), cur.Row()...))
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Rows) {
		t.Fatalf("cursor rows = %d, Result.Rows = %d", len(got), len(res.Rows))
	}
	for i := range got {
		if strings.Join(got[i], "\x00") != strings.Join(res.Rows[i], "\x00") {
			t.Errorf("row %d differs: %v vs %v", i, got[i], res.Rows[i])
		}
	}
}
