package threatraptor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/relstore"
)

// BenchmarkIngestParallelSharded measures multi-host ingest throughput
// against the shard count: 8 per-host client goroutines each ingest one
// batch per iteration through the full System path (parse-intern,
// entity broadcast, per-shard event load). On 1 shard every batch
// serializes on the same table/graph write locks; with 8 shards the
// batches land on disjoint shards and load in parallel.
//
// The "under-hunts" scenarios add a hunter continuously paging
// host0-pinned hunts while the 8 hosts ingest. Under the lock-pinned
// snapshot design this was sharding's headline win (19.5× on 1 core:
// on 1 shard every open cursor pinned THE events table and all ingest
// queued behind every hunt); under epoch snapshots (PR 4) cursors
// block no writers on any shard count, so the 1-shard and 8-shard
// under-hunts numbers should now sit close together — this benchmark
// is the regression guard for that property.
//
// Each iteration starts from a freshly warmed System (outside the
// timer); the warmup interns every entity, so the measured phase is
// event loading, which is where the write locks live. Reported ns/op
// covers 8 × 1000 events.
func BenchmarkIngestParallelSharded(b *testing.B) {
	const hosts = 8
	const perBatch = 1000
	batches := make([][]Record, hosts)
	for h := range batches {
		batches[h] = hostBatch(fmt.Sprintf("host%d", h), 1, perBatch)
	}
	const hostHunt = `proc p[host = "host0"] read file f as e1` + "\nreturn distinct p, f"
	for _, cfg := range []struct {
		name       string
		shards     int
		underHunts bool
	}{
		{"plain/shards-1", 1, false},
		{"plain/shards-8", 8, false},
		{"under-hunts/shards-1", 1, true},
		{"under-hunts/shards-8", 8, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(hosts * perBatch))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := New(Options{Shards: cfg.shards})
				if err != nil {
					b.Fatal(err)
				}
				for h := 0; h < hosts; h++ {
					// Warmup interns each host's entities so the timed
					// batches are event-only.
					if _, err := sys.IngestRecords(batches[h]); err != nil {
						b.Fatal(err)
					}
				}
				stop := make(chan struct{})
				var hunter sync.WaitGroup
				if cfg.underHunts {
					hunter.Add(1)
					go func() {
						defer hunter.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							cur, err := sys.HuntCursor(hostHunt)
							if err != nil {
								b.Error(err)
								return
							}
							for n := 0; n < 64 && cur.Next(); n++ {
							}
							cur.Close()
						}
					}()
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for h := 0; h < hosts; h++ {
					wg.Add(1)
					go func(h int) {
						defer wg.Done()
						if _, err := sys.IngestRecords(batches[h]); err != nil {
							b.Error(err)
						}
					}(h)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				hunter.Wait()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkIngestStoreParallelSharded isolates the storage layer: the
// same pre-parsed per-host event batches loaded straight into the
// sharded relational store from 8 goroutines, without the parser's
// serialized interning phase or the graph backend in front of it.
func BenchmarkIngestStoreParallelSharded(b *testing.B) {
	const hosts = 8
	const perBatch = 1000
	p := audit.NewParser()
	batches := make([][]*audit.Event, hosts)
	for h := range batches {
		for _, r := range hostBatch(fmt.Sprintf("host%d", h), 1, perBatch) {
			ev, err := p.Add(r)
			if err != nil {
				b.Fatal(err)
			}
			batches[h] = append(batches[h], ev)
		}
	}
	entities := p.Entities()
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.SetBytes(int64(hosts * perBatch))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rel, err := relstore.NewSharded(shards)
				if err != nil {
					b.Fatal(err)
				}
				if err := rel.LoadEntities(entities); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for h := 0; h < hosts; h++ {
					wg.Add(1)
					go func(h int) {
						defer wg.Done()
						if err := rel.LoadEvents(batches[h]); err != nil {
							b.Error(err)
						}
					}(h)
				}
				wg.Wait()
			}
		})
	}
}
